// Unit tests for core/checked.hpp: overflow detection at the int64 edges,
// ceil_div domain/edge behaviour, checked casts/rounding, and the
// always-compiled RTHV_INVARIANT contracts (fatal in debug, counted in
// release).
#include "core/checked.hpp"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace core = rthv::core;
using rthv::sim::Duration;
using rthv::sim::TimePoint;

namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(CheckedAdd, PassesThroughInRangeValues) {
  EXPECT_EQ(core::checked_add(std::int64_t{2}, std::int64_t{3}), 5);
  EXPECT_EQ(core::checked_add(kMax - 1, std::int64_t{1}), kMax);
  EXPECT_EQ(core::checked_add(kMin, kMax), -1);
}

TEST(CheckedAdd, ThrowsAtInt64Edges) {
  EXPECT_THROW((void)core::checked_add(kMax, std::int64_t{1}), core::TickOverflow);
  EXPECT_THROW((void)core::checked_add(kMin, std::int64_t{-1}), core::TickOverflow);
}

TEST(CheckedSub, ThrowsAtInt64Edges) {
  EXPECT_EQ(core::checked_sub(kMin + 1, std::int64_t{1}), kMin);
  EXPECT_THROW((void)core::checked_sub(kMin, std::int64_t{1}), core::TickOverflow);
  EXPECT_THROW((void)core::checked_sub(kMax, std::int64_t{-1}), core::TickOverflow);
}

TEST(CheckedMul, ThrowsAtInt64Edges) {
  EXPECT_EQ(core::checked_mul(std::int64_t{1} << 31, std::int64_t{1} << 31),
            std::int64_t{1} << 62);
  EXPECT_THROW((void)core::checked_mul(kMax, std::int64_t{2}), core::TickOverflow);
  EXPECT_THROW((void)core::checked_mul(kMax / 2 + 1, std::int64_t{2}),
               core::TickOverflow);
  // INT64_MIN * -1 is the one product of magnitude-1 factors that overflows.
  EXPECT_THROW((void)core::checked_mul(kMin, std::int64_t{-1}), core::TickOverflow);
}

TEST(CheckedMul, Unsigned64) {
  constexpr std::uint64_t umax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(core::checked_mul(std::uint64_t{3}, std::uint64_t{4}), 12u);
  EXPECT_THROW((void)core::checked_mul(umax, std::uint64_t{2}), core::TickOverflow);
  EXPECT_THROW((void)core::checked_add(umax, std::uint64_t{1}), core::TickOverflow);
}

TEST(CeilDiv, ExactMultiplesDoNotRoundUp) {
  EXPECT_EQ(core::ceil_div(std::int64_t{12}, std::int64_t{4}), 3);
  EXPECT_EQ(core::ceil_div(std::int64_t{0}, std::int64_t{7}), 0);
  EXPECT_EQ(core::ceil_div(kMax, std::int64_t{1}), kMax);
}

TEST(CeilDiv, RoundsTowardPositiveInfinity) {
  EXPECT_EQ(core::ceil_div(std::int64_t{13}, std::int64_t{4}), 4);
  EXPECT_EQ(core::ceil_div(std::int64_t{1}, std::int64_t{1000}), 1);
  // Negative numerators: mathematical ceiling, i.e. toward zero.
  EXPECT_EQ(core::ceil_div(std::int64_t{-13}, std::int64_t{4}), -3);
  EXPECT_EQ(core::ceil_div(std::int64_t{-12}, std::int64_t{4}), -3);
}

TEST(CeilDiv, NoOverflowNearInt64Max) {
  // The textbook (a + b - 1) / b form would wrap here.
  EXPECT_EQ(core::ceil_div(kMax, std::int64_t{2}), kMax / 2 + 1);
  EXPECT_EQ(core::ceil_div(kMax - 1, kMax), 1);
}

TEST(CeilDiv, NonPositiveDivisorIsDomainError) {
  EXPECT_THROW((void)core::ceil_div(std::int64_t{5}, std::int64_t{0}),
               core::TickDomainError);
  EXPECT_THROW((void)core::ceil_div(std::int64_t{5}, std::int64_t{-1}),
               core::TickDomainError);
}

TEST(CheckedCast, RangeChecks) {
  EXPECT_EQ(core::checked_cast<std::uint32_t>(std::int64_t{7}), 7u);
  EXPECT_EQ(core::checked_cast<std::int64_t>(std::uint64_t{kMax}), kMax);
  EXPECT_THROW((void)core::checked_cast<std::uint32_t>(std::int64_t{-1}),
               core::TickDomainError);
  EXPECT_THROW((void)core::checked_cast<std::int64_t>(
                   std::numeric_limits<std::uint64_t>::max()),
               core::TickDomainError);
  EXPECT_THROW((void)core::checked_cast<std::int32_t>(kMax), core::TickDomainError);
}

TEST(CheckedRoundNs, RoundsToNearestTick) {
  EXPECT_EQ(core::checked_round_ns(2.4), 2);
  EXPECT_EQ(core::checked_round_ns(2.5), 3);
  EXPECT_EQ(core::checked_round_ns(-2.5), -3);
  EXPECT_EQ(core::checked_round_ns(0.0), 0);
}

TEST(CheckedRoundNs, RejectsNanAndOutOfRange) {
  EXPECT_THROW((void)core::checked_round_ns(std::numeric_limits<double>::quiet_NaN()),
               core::TickOverflow);
  EXPECT_THROW((void)core::checked_round_ns(1e19), core::TickOverflow);
  EXPECT_THROW((void)core::checked_round_ns(-1e19), core::TickOverflow);
  EXPECT_THROW((void)core::checked_round_ns(std::numeric_limits<double>::infinity()),
               core::TickOverflow);
}

TEST(CheckedDuration, TickOverloadsMatchRawSemantics) {
  const Duration a = Duration::ms(3);
  const Duration b = Duration::us(500);
  EXPECT_EQ(core::checked_add(a, b), a + b);
  EXPECT_EQ(core::checked_sub(a, b), a - b);
  EXPECT_EQ(core::checked_mul(a, std::int64_t{4}), a * 4);
  EXPECT_EQ(core::checked_mul(a, std::uint64_t{4}), a * 4);
  EXPECT_EQ(core::checked_add(TimePoint::at_ns(10), b), TimePoint::at_ns(10) + b);
  EXPECT_EQ(core::ceil_div(Duration::ns(13), Duration::ns(4)), 4);
}

TEST(CheckedDuration, ThrowsInsteadOfWrapping) {
  EXPECT_THROW((void)core::checked_add(Duration::max(), Duration::ns(1)),
               core::TickOverflow);
  EXPECT_THROW((void)core::checked_mul(Duration::s(300), std::int64_t{1} << 32),
               core::TickOverflow);
  EXPECT_THROW((void)core::checked_mul(Duration::ns(1),
                                       std::numeric_limits<std::uint64_t>::max()),
               core::TickDomainError);
  EXPECT_THROW((void)core::ceil_div(Duration::ns(5), Duration::zero()),
               core::TickDomainError);
}

TEST(CheckedErrors, MessagesNameTheContext) {
  try {
    (void)core::checked_mul(kMax, std::int64_t{2}, "analysis/test-context");
    FAIL() << "expected TickOverflow";
  } catch (const core::TickOverflow& e) {
    EXPECT_NE(std::string(e.what()).find("analysis/test-context"), std::string::npos);
  }
}

TEST(InvariantCounters, CountValueTotalSnapshotReset) {
  auto& reg = core::InvariantCounters::instance();
  reg.reset();
  EXPECT_EQ(reg.total(), 0u);
  reg.count("test/alpha");
  reg.count("test/alpha");
  reg.count("test/beta");
  EXPECT_EQ(reg.value("test/alpha"), 2u);
  EXPECT_EQ(reg.value("test/beta"), 1u);
  EXPECT_EQ(reg.value("test/unknown"), 0u);
  EXPECT_EQ(reg.total(), 3u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "test/alpha");
  EXPECT_EQ(snap[0].second, 2u);
  reg.reset();
  EXPECT_EQ(reg.total(), 0u);
}

TEST(InvariantCounters, PublishesAsObsMetrics) {
  auto& reg = core::InvariantCounters::instance();
  reg.reset();
  reg.count("test/published");
  reg.count("test/published");
  rthv::obs::MetricsRegistry metrics;
  reg.publish(metrics);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counter_value("invariant/violations/test/published"), 2u);
  reg.reset();
}

#ifdef NDEBUG
TEST(Contracts, ReleaseModeCountsInsteadOfAborting) {
  auto& reg = core::InvariantCounters::instance();
  reg.reset();
  RTHV_INVARIANT(1 + 1 == 3, "test/release-invariant");
  RTHV_PRECONDITION(false, "test/release-precondition");
  RTHV_INVARIANT(true, "test/never-hit");
  EXPECT_EQ(reg.value("test/release-invariant"), 1u);
  EXPECT_EQ(reg.value("test/release-precondition"), 1u);
  EXPECT_EQ(reg.value("test/never-hit"), 0u);
  reg.reset();
}
#else
TEST(ContractsDeathTest, DebugModeAbortsWithContractName) {
  EXPECT_DEATH(RTHV_INVARIANT(false, "test/debug-invariant"),
               "invariant 'test/debug-invariant' violated");
  EXPECT_DEATH(RTHV_PRECONDITION(false, "test/debug-precondition"),
               "precondition 'test/debug-precondition' violated");
}

TEST(Contracts, DebugModePassingConditionIsSilent) {
  RTHV_INVARIANT(2 + 2 == 4, "test/debug-pass");
  RTHV_PRECONDITION(true, "test/debug-pass");
}
#endif

}  // namespace
