#include "core/analysis_facade.hpp"

#include <gtest/gtest.h>

namespace rthv::core {
namespace {

using sim::Duration;

TEST(AnalysisFacadeTest, OverheadTimesMatchPaperPlatform) {
  const AnalysisFacade facade(SystemConfig::paper_baseline());
  const auto oh = facade.overhead_times();
  EXPECT_EQ(oh.c_mon, Duration::ns(640));
  EXPECT_EQ(oh.c_sched, Duration::ns(4385));
  EXPECT_EQ(oh.c_ctx, Duration::us(50));
}

TEST(AnalysisFacadeTest, TdmaModelUsesSubscriberSlot) {
  const AnalysisFacade facade(SystemConfig::paper_baseline());
  const auto tdma = facade.tdma_model(0);
  EXPECT_EQ(tdma.cycle, Duration::us(14000));
  EXPECT_EQ(tdma.slot, Duration::us(6000));
}

TEST(AnalysisFacadeTest, SourceModelCarriesCosts) {
  const AnalysisFacade facade(SystemConfig::paper_baseline());
  const auto model = facade.source_model(0, analysis::make_sporadic(Duration::us(1444)));
  EXPECT_EQ(model.c_top, Duration::us(5));
  EXPECT_EQ(model.c_bottom, Duration::us(40));
  EXPECT_EQ((*model.activation)(2), Duration::us(1444));
}

TEST(AnalysisFacadeTest, CompareShowsTheHeadlineResult) {
  // With conforming d_min arrivals the interposed WCRT is far below the
  // TDMA-delayed WCRT (the paper's central claim).
  const AnalysisFacade facade(SystemConfig::paper_baseline());
  const auto cmp =
      facade.compare(0, analysis::make_sporadic(Duration::us(1444)), true);
  ASSERT_TRUE(cmp.tdma_delayed.has_value());
  ASSERT_TRUE(cmp.interposed.has_value());
  EXPECT_GE(cmp.tdma_delayed->worst_case, Duration::us(8000));
  EXPECT_LT(cmp.interposed->worst_case, Duration::us(200));
}

TEST(AnalysisFacadeTest, InterferersSkipAnalyzedSource) {
  auto cfg = SystemConfig::paper_baseline();
  auto second = cfg.sources[0];
  second.name = "other";
  cfg.sources.push_back(second);
  const AnalysisFacade facade(cfg);
  const std::vector<std::shared_ptr<const analysis::MinDistanceFunction>> acts{
      analysis::make_sporadic(Duration::us(1000)),
      analysis::make_sporadic(Duration::us(2000))};
  const auto others = facade.interferers(0, acts);
  ASSERT_EQ(others.size(), 1u);
  EXPECT_EQ((*others[0].activation)(2), Duration::us(2000));
}

TEST(AnalysisFacadeTest, OutOfRangeSourceThrows) {
  const AnalysisFacade facade(SystemConfig::paper_baseline());
  EXPECT_THROW((void)facade.tdma_model(3), std::invalid_argument);
  EXPECT_THROW((void)facade.source_model(3, analysis::make_sporadic(Duration::us(1))),
               std::invalid_argument);
}

}  // namespace
}  // namespace rthv::core
