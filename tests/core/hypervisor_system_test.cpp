#include "core/hypervisor_system.hpp"

#include <gtest/gtest.h>

#include "mon/learning_monitor.hpp"
#include "workload/generators.hpp"

namespace rthv::core {
namespace {

using sim::Duration;

SystemConfig small_config() {
  // A scaled-down system for fast tests: 1000/1000/500 us slots.
  auto cfg = SystemConfig::paper_baseline();
  cfg.partitions[0].slot_length = Duration::us(1000);
  cfg.partitions[1].slot_length = Duration::us(1000);
  cfg.partitions[2].slot_length = Duration::us(500);
  cfg.sources[0].c_top = Duration::us(5);
  cfg.sources[0].c_bottom = Duration::us(20);
  return cfg;
}

TEST(HypervisorSystemTest, BuildsPaperBaseline) {
  HypervisorSystem system(SystemConfig::paper_baseline());
  EXPECT_EQ(system.hypervisor().num_partitions(), 3u);
  EXPECT_EQ(system.hypervisor().scheduler().cycle_length(), Duration::us(14000));
  EXPECT_EQ(system.hypervisor().irq_source(0).c_bottom, Duration::us(40));
}

TEST(HypervisorSystemTest, RunsTraceToCompletion) {
  HypervisorSystem system(small_config());
  workload::ExponentialTraceGenerator gen(Duration::us(500), 1);
  system.attach_trace(0, gen.generate(100));
  const auto completed = system.run(Duration::s(10));
  EXPECT_GE(completed + system.platform().intc().lost_raises(), 100u);
  EXPECT_EQ(system.recorder().total(), completed);
}

TEST(HypervisorSystemTest, MonitoredModeProducesInterposedClass) {
  auto cfg = small_config();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = Duration::us(300);
  HypervisorSystem system(cfg);
  workload::ExponentialTraceGenerator gen(Duration::us(500), 2, Duration::us(300));
  system.attach_trace(0, gen.generate(200));
  system.run(Duration::s(10));
  EXPECT_GT(system.recorder().count(stats::HandlingClass::kInterposed), 0u);
  // Conforming arrivals: essentially nothing is delayed. (A bottom handler
  // that straddles a slot boundary can occasionally push a later event into
  // the delayed path; see EXPERIMENTS.md.)
  EXPECT_LE(system.recorder().count(stats::HandlingClass::kDelayed), 2u);
}

TEST(HypervisorSystemTest, UnmonitoredModeNeverInterposes) {
  HypervisorSystem system(small_config());
  workload::ExponentialTraceGenerator gen(Duration::us(500), 3);
  system.attach_trace(0, gen.generate(200));
  system.run(Duration::s(10));
  EXPECT_EQ(system.recorder().count(stats::HandlingClass::kInterposed), 0u);
  EXPECT_GT(system.recorder().count(stats::HandlingClass::kDelayed), 0u);
  EXPECT_GT(system.recorder().count(stats::HandlingClass::kDirect), 0u);
}

TEST(HypervisorSystemTest, KeepCompletionsStoresPerEventRecords) {
  HypervisorSystem system(small_config());
  system.keep_completions(true);
  workload::ExponentialTraceGenerator gen(Duration::us(500), 4);
  system.attach_trace(0, gen.generate(50));
  const auto completed = system.run(Duration::s(5));
  EXPECT_EQ(system.completions().size(), completed);
  // Records carry monotone bottom-handler end times per source FIFO.
  for (std::size_t i = 1; i < system.completions().size(); ++i) {
    EXPECT_GE(system.completions()[i].bh_end, system.completions()[i - 1].bh_end);
    EXPECT_EQ(system.completions()[i].seq, system.completions()[i - 1].seq + 1);
  }
}

TEST(HypervisorSystemTest, CompletionsNotKeptByDefault) {
  HypervisorSystem system(small_config());
  workload::ExponentialTraceGenerator gen(Duration::us(500), 5);
  system.attach_trace(0, gen.generate(20));
  system.run(Duration::s(5));
  EXPECT_TRUE(system.completions().empty());
  EXPECT_GT(system.recorder().total(), 0u);
}

TEST(HypervisorSystemTest, LearningMonitorConfig) {
  auto cfg = small_config();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = MonitorKind::kLearning;
  cfg.sources[0].learning_depth = 3;
  cfg.sources[0].learning_events = 20;
  HypervisorSystem system(cfg);
  workload::ExponentialTraceGenerator gen(Duration::us(500), 6);
  system.attach_trace(0, gen.generate(100));
  system.run(Duration::s(10));
  const auto* monitor =
      dynamic_cast<const mon::LearningDeltaMonitor*>(system.hypervisor().monitor(0));
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(monitor->phase(), mon::LearningDeltaMonitor::Phase::kRunning);
}

TEST(HypervisorSystemTest, InvalidConfigsThrow) {
  SystemConfig no_partitions;
  EXPECT_THROW(HypervisorSystem{no_partitions}, std::invalid_argument);

  auto bad_subscriber = small_config();
  bad_subscriber.sources[0].subscriber = 99;
  EXPECT_THROW(HypervisorSystem{bad_subscriber}, std::invalid_argument);

  auto bad_monitor = small_config();
  bad_monitor.sources[0].monitor = MonitorKind::kDeltaMin;  // d_min unset
  EXPECT_THROW(HypervisorSystem{bad_monitor}, std::invalid_argument);

  auto bad_learning = small_config();
  bad_learning.sources[0].monitor = MonitorKind::kLearning;
  bad_learning.sources[0].learning_events = 0;
  EXPECT_THROW(HypervisorSystem{bad_learning}, std::invalid_argument);
}

TEST(HypervisorSystemTest, AttachTraceValidatesSourceIndex) {
  HypervisorSystem system(small_config());
  EXPECT_THROW(system.attach_trace(5, workload::Trace({Duration::us(1)})),
               std::invalid_argument);
}

TEST(HypervisorSystemTest, NoTraceRunsToHorizon) {
  HypervisorSystem system(small_config());
  const auto completed = system.run(Duration::ms(10));
  EXPECT_EQ(completed, 0u);
  EXPECT_GE(system.simulator().now(), sim::TimePoint::at_us(10'000));
}

TEST(HypervisorSystemTest, TwoSourcesOnDistinctLines) {
  auto cfg = small_config();
  auto second = cfg.sources[0];
  second.name = "second";
  second.subscriber = 0;
  cfg.sources.push_back(second);
  HypervisorSystem system(cfg);
  workload::ExponentialTraceGenerator g1(Duration::us(700), 7);
  workload::ExponentialTraceGenerator g2(Duration::us(900), 8);
  system.attach_trace(0, g1.generate(50));
  system.attach_trace(1, g2.generate(50));
  const auto completed = system.run(Duration::s(10));
  EXPECT_GE(completed + system.platform().intc().lost_raises(), 100u);
}

}  // namespace
}  // namespace rthv::core
