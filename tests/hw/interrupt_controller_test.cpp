#include "hw/interrupt_controller.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rthv::hw {
namespace {

TEST(InterruptControllerTest, RaiseSetsPending) {
  InterruptController intc(4);
  intc.set_cpu_irq_enabled(false);
  EXPECT_TRUE(intc.raise(2));
  EXPECT_TRUE(intc.pending(2));
  EXPECT_FALSE(intc.pending(1));
}

TEST(InterruptControllerTest, NonCountingLatchLosesSecondRaise) {
  InterruptController intc(4);
  intc.set_cpu_irq_enabled(false);
  EXPECT_TRUE(intc.raise(1));
  EXPECT_FALSE(intc.raise(1));  // still pending: the raise is lost
  EXPECT_EQ(intc.lost_raises(), 1u);
  EXPECT_EQ(intc.lost_raises(1), 1u);
  EXPECT_EQ(intc.lost_raises(0), 0u);
  EXPECT_EQ(intc.raises(), 2u);
}

TEST(InterruptControllerTest, AcknowledgeClearsPending) {
  InterruptController intc(4);
  intc.set_cpu_irq_enabled(false);
  intc.raise(3);
  intc.acknowledge(3);
  EXPECT_FALSE(intc.pending(3));
  EXPECT_TRUE(intc.raise(3));  // can latch again
}

TEST(InterruptControllerTest, HighestPendingIsLowestLineNumber) {
  InterruptController intc(8);
  intc.set_cpu_irq_enabled(false);
  intc.raise(5);
  intc.raise(2);
  intc.raise(7);
  ASSERT_TRUE(intc.highest_pending().has_value());
  EXPECT_EQ(*intc.highest_pending(), 2u);
}

TEST(InterruptControllerTest, DisabledLineInvisibleToHighestPending) {
  InterruptController intc(4);
  intc.set_cpu_irq_enabled(false);
  intc.enable_line(1, false);
  intc.raise(1);
  EXPECT_FALSE(intc.highest_pending().has_value());
  intc.enable_line(1, true);
  EXPECT_EQ(*intc.highest_pending(), 1u);
}

TEST(InterruptControllerTest, DeliveryOnRaiseWhenEnabled) {
  InterruptController intc(4);
  int entries = 0;
  intc.set_irq_entry([&] {
    ++entries;
    intc.set_cpu_irq_enabled(false);
    intc.acknowledge(*intc.highest_pending());
  });
  intc.raise(2);
  EXPECT_EQ(entries, 1);
}

TEST(InterruptControllerTest, NoDeliveryWhileCpuIrqDisabled) {
  InterruptController intc(4);
  int entries = 0;
  intc.set_irq_entry([&] {
    ++entries;
    intc.set_cpu_irq_enabled(false);
    intc.acknowledge(*intc.highest_pending());
  });
  intc.set_cpu_irq_enabled(false);
  intc.raise(2);
  EXPECT_EQ(entries, 0);
  intc.set_cpu_irq_enabled(true);  // latched IRQ delivered on enable
  EXPECT_EQ(entries, 1);
}

TEST(InterruptControllerTest, PendingRetainedWhileLineDisabled) {
  InterruptController intc(4);
  int entries = 0;
  intc.set_irq_entry([&] {
    ++entries;
    intc.set_cpu_irq_enabled(false);
    intc.acknowledge(*intc.highest_pending());
  });
  intc.enable_line(2, false);
  intc.raise(2);
  EXPECT_EQ(entries, 0);
  EXPECT_TRUE(intc.pending(2));
  intc.enable_line(2, true);
  EXPECT_EQ(entries, 1);
}

TEST(InterruptControllerTest, RaiseObserverSeesNewLatches) {
  InterruptController intc(4);
  intc.set_cpu_irq_enabled(false);
  std::vector<IrqLine> observed;
  intc.set_raise_observer([&](IrqLine l) { observed.push_back(l); });
  intc.raise(1);
  intc.raise(1);  // lost -- observer not called
  intc.raise(3);
  EXPECT_EQ(observed, (std::vector<IrqLine>{1, 3}));
}

TEST(InterruptControllerTest, SequentialServiceOfMultiplePending) {
  InterruptController intc(4);
  std::vector<IrqLine> serviced;
  intc.set_irq_entry([&] {
    intc.set_cpu_irq_enabled(false);
    const auto line = *intc.highest_pending();
    serviced.push_back(line);
    intc.acknowledge(line);
    intc.set_cpu_irq_enabled(true);  // service chain continues
  });
  intc.set_cpu_irq_enabled(false);
  intc.raise(3);
  intc.raise(1);
  intc.set_cpu_irq_enabled(true);
  EXPECT_EQ(serviced, (std::vector<IrqLine>{1, 3}));
}

}  // namespace
}  // namespace rthv::hw
