#include "hw/hw_timer.hpp"

#include <gtest/gtest.h>

namespace rthv::hw {
namespace {

using sim::Duration;
using sim::TimePoint;

class HwTimerTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  InterruptController intc_{4};
  HwTimer timer_{sim_, intc_, 1};
};

TEST_F(HwTimerTest, FiresAtProgrammedDelayAndRaisesLine) {
  intc_.set_cpu_irq_enabled(false);
  timer_.program(Duration::us(10));
  EXPECT_TRUE(timer_.armed());
  sim_.run();
  EXPECT_EQ(sim_.now(), TimePoint::at_us(10));
  EXPECT_TRUE(intc_.pending(1));
  EXPECT_FALSE(timer_.armed());
  EXPECT_EQ(timer_.fires(), 1u);
}

TEST_F(HwTimerTest, ProgramAtAbsoluteDeadline) {
  intc_.set_cpu_irq_enabled(false);
  timer_.program_at(TimePoint::at_us(25));
  EXPECT_EQ(timer_.deadline(), TimePoint::at_us(25));
  sim_.run();
  EXPECT_EQ(sim_.now(), TimePoint::at_us(25));
}

TEST_F(HwTimerTest, ReprogramReplacesDeadline) {
  intc_.set_cpu_irq_enabled(false);
  timer_.program(Duration::us(10));
  timer_.program(Duration::us(30));
  sim_.run();
  EXPECT_EQ(sim_.now(), TimePoint::at_us(30));
  EXPECT_EQ(timer_.fires(), 1u);  // only the second programming fired
}

TEST_F(HwTimerTest, CancelDisarms) {
  intc_.set_cpu_irq_enabled(false);
  timer_.program(Duration::us(10));
  timer_.cancel();
  EXPECT_FALSE(timer_.armed());
  sim_.run();
  EXPECT_FALSE(intc_.pending(1));
  EXPECT_EQ(timer_.fires(), 0u);
}

TEST_F(HwTimerTest, ExpiryHookRunsBeforeRaiseAndCanReprogram) {
  intc_.set_cpu_irq_enabled(false);
  int hook_runs = 0;
  timer_.set_on_expiry([&] {
    ++hook_runs;
    if (hook_runs < 3) timer_.program(Duration::us(5));
  });
  timer_.program(Duration::us(5));
  sim_.run();
  EXPECT_EQ(hook_runs, 3);
  EXPECT_EQ(timer_.fires(), 3u);
  EXPECT_EQ(sim_.now(), TimePoint::at_us(15));
}

TEST_F(HwTimerTest, SelfReprogrammingKeepsExactDistances) {
  intc_.set_cpu_irq_enabled(false);
  std::vector<TimePoint> fire_times;
  timer_.set_on_expiry([&] {
    fire_times.push_back(sim_.now());
    if (fire_times.size() < 4) timer_.program(Duration::us(7));
  });
  timer_.program(Duration::us(7));
  sim_.run();
  ASSERT_EQ(fire_times.size(), 4u);
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_EQ(fire_times[i] - fire_times[i - 1], Duration::us(7));
  }
}

TEST_F(HwTimerTest, PeriodicModeAutoReloads) {
  intc_.set_cpu_irq_enabled(false);
  timer_.program_periodic(Duration::us(100));
  sim_.run_until(TimePoint::at_us(350));
  EXPECT_EQ(timer_.fires(), 3u);  // 100, 200, 300
  EXPECT_TRUE(timer_.armed());
  EXPECT_EQ(timer_.deadline(), TimePoint::at_us(400));
}

TEST_F(HwTimerTest, PeriodicModeStopsOnCancel) {
  intc_.set_cpu_irq_enabled(false);
  timer_.program_periodic(Duration::us(100));
  sim_.schedule_at(TimePoint::at_us(250), [this] { timer_.cancel(); });
  sim_.run();
  EXPECT_EQ(timer_.fires(), 2u);
  EXPECT_FALSE(timer_.armed());
}

TEST_F(HwTimerTest, OneShotProgramClearsPeriodicMode) {
  intc_.set_cpu_irq_enabled(false);
  timer_.program_periodic(Duration::us(100));
  sim_.run_until(TimePoint::at_us(150));
  timer_.program(Duration::us(30));  // switch to one-shot
  sim_.run();
  EXPECT_EQ(timer_.fires(), 2u);  // 100 (periodic) + 180 (one-shot)
  EXPECT_FALSE(timer_.armed());
}

TEST(TimestampTimerTest, ReadsSimulatorClock) {
  sim::Simulator sim;
  TimestampTimer ts(sim);
  EXPECT_EQ(ts.now(), TimePoint::origin());
  sim.schedule_at(TimePoint::at_us(9), [] {});
  sim.run();
  EXPECT_EQ(ts.now(), TimePoint::at_us(9));
}

}  // namespace
}  // namespace rthv::hw
