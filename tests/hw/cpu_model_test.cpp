#include "hw/cpu_model.hpp"

#include <gtest/gtest.h>

namespace rthv::hw {
namespace {

using sim::Duration;

TEST(CpuModelTest, DefaultIsPaperPlatform) {
  CpuModel cpu;
  EXPECT_EQ(cpu.frequency_hz(), 200'000'000u);
  // 1 cycle = 5 ns at 200 MHz.
  EXPECT_EQ(cpu.cycles_to_duration(1), Duration::ns(5));
  EXPECT_EQ(cpu.cycles_to_duration(200'000'000), Duration::s(1));
}

TEST(CpuModelTest, PaperOverheadBudgetsConvert) {
  CpuModel cpu;
  // Section 6.2: C_Mon = 128 instructions -> 640 ns; C_sched = 877 -> 4385 ns;
  // context switch 5000 instr + 5000 cycles -> 25 us + 25 us = 50 us.
  EXPECT_EQ(cpu.instructions_to_duration(128), Duration::ns(640));
  EXPECT_EQ(cpu.instructions_to_duration(877), Duration::ns(4385));
  EXPECT_EQ(cpu.instructions_to_duration(5000) + cpu.cycles_to_duration(5000),
            Duration::us(50));
}

TEST(CpuModelTest, CpiScalesInstructionTime) {
  CpuModel cpu(200'000'000, 1500);  // 1.5 cycles per instruction
  EXPECT_EQ(cpu.instructions_to_duration(1000), cpu.cycles_to_duration(1500));
}

TEST(CpuModelTest, DurationToCyclesRoundTrip) {
  CpuModel cpu;
  EXPECT_EQ(cpu.duration_to_cycles(Duration::us(1)), 200u);
  EXPECT_EQ(cpu.duration_to_cycles(cpu.cycles_to_duration(12345)), 12345u);
}

TEST(CpuModelTest, OtherFrequencies) {
  CpuModel ghz(1'000'000'000);
  EXPECT_EQ(ghz.cycles_to_duration(1), Duration::ns(1));
  CpuModel mhz100(100'000'000);
  EXPECT_EQ(mhz100.cycles_to_duration(1), Duration::ns(10));
}

TEST(CpuModelTest, AccountingAccumulatesPerCategory) {
  CpuModel cpu;
  cpu.retire_cycles(WorkCategory::kTopHandler, 100);
  cpu.retire_cycles(WorkCategory::kTopHandler, 50);
  cpu.retire_instructions(WorkCategory::kMonitor, 128);
  cpu.retire_duration(WorkCategory::kGuest, Duration::us(1));
  EXPECT_EQ(cpu.cycles_in(WorkCategory::kTopHandler), 150u);
  EXPECT_EQ(cpu.cycles_in(WorkCategory::kMonitor), 128u);
  EXPECT_EQ(cpu.cycles_in(WorkCategory::kGuest), 200u);
  EXPECT_EQ(cpu.total_cycles(), 150u + 128u + 200u);
}

TEST(CpuModelTest, ResetAccountingClearsAll) {
  CpuModel cpu;
  cpu.retire_cycles(WorkCategory::kIdle, 10);
  cpu.reset_accounting();
  EXPECT_EQ(cpu.total_cycles(), 0u);
}

TEST(CpuModelTest, CategoryNames) {
  EXPECT_EQ(to_string(WorkCategory::kMonitor), "monitor");
  EXPECT_EQ(to_string(WorkCategory::kCacheWriteback), "cache-writeback");
  EXPECT_NE(to_string(WorkCategory::kGuest), to_string(WorkCategory::kIdle));
}

}  // namespace
}  // namespace rthv::hw
