#include "hw/platform.hpp"

#include <gtest/gtest.h>

namespace rthv::hw {
namespace {

TEST(MemorySystemTest, DefaultsMatchPaper) {
  MemorySystem mem;
  const auto cost = mem.context_switch_cost();
  EXPECT_EQ(cost.invalidate_instructions, 5000u);
  EXPECT_EQ(cost.writeback_cycles, 5000u);
}

TEST(MemorySystemTest, Configurable) {
  MemorySystem mem(100, 200);
  EXPECT_EQ(mem.context_switch_cost().invalidate_instructions, 100u);
  EXPECT_EQ(mem.context_switch_cost().writeback_cycles, 200u);
  mem.set_invalidate_instructions(7);
  mem.set_writeback_cycles(8);
  EXPECT_EQ(mem.context_switch_cost().invalidate_instructions, 7u);
  EXPECT_EQ(mem.context_switch_cost().writeback_cycles, 8u);
}

TEST(PlatformTest, DefaultConfigIsPaperPlatform) {
  sim::Simulator s;
  Platform p(s);
  EXPECT_EQ(p.cpu().frequency_hz(), 200'000'000u);
  EXPECT_EQ(p.intc().num_lines(), 32u);
  EXPECT_EQ(p.memory().context_switch_cost().invalidate_instructions, 5000u);
}

TEST(PlatformTest, AddTimerBindsLineAndSimulator) {
  sim::Simulator s;
  Platform p(s);
  p.intc().set_cpu_irq_enabled(false);
  auto& t = p.add_timer(5);
  EXPECT_EQ(p.num_timers(), 1u);
  EXPECT_EQ(t.line(), 5u);
  t.program(sim::Duration::us(3));
  s.run();
  EXPECT_TRUE(p.intc().pending(5));
  EXPECT_EQ(&p.timer(0), &t);
}

TEST(PlatformTest, TimestampTimerSharesClock) {
  sim::Simulator s;
  Platform p(s);
  s.schedule_at(sim::TimePoint::at_us(4), [] {});
  s.run();
  EXPECT_EQ(p.timestamp_timer().now(), sim::TimePoint::at_us(4));
}

TEST(PlatformTest, CustomConfig) {
  sim::Simulator s;
  PlatformConfig cfg;
  cfg.cpu_freq_hz = 1'000'000'000;
  cfg.num_irq_lines = 8;
  cfg.ctx_writeback_cycles = 123;
  Platform p(s, cfg);
  EXPECT_EQ(p.cpu().frequency_hz(), 1'000'000'000u);
  EXPECT_EQ(p.intc().num_lines(), 8u);
  EXPECT_EQ(p.memory().context_switch_cost().writeback_cycles, 123u);
}

}  // namespace
}  // namespace rthv::hw
