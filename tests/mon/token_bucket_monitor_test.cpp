#include "mon/token_bucket_monitor.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace rthv::mon {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_us(std::int64_t t) { return TimePoint::at_us(t); }

TEST(TokenBucketMonitorTest, StartsFullAndAdmitsBurstUpToDepth) {
  TokenBucketMonitor m(Duration::us(100), 3);
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  EXPECT_TRUE(m.record_and_check(at_us(1)));
  EXPECT_TRUE(m.record_and_check(at_us(2)));
  EXPECT_FALSE(m.record_and_check(at_us(3)));  // bucket empty
}

TEST(TokenBucketMonitorTest, RefillsAtConfiguredRate) {
  TokenBucketMonitor m(Duration::us(100), 1);
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  EXPECT_FALSE(m.record_and_check(at_us(50)));
  EXPECT_TRUE(m.record_and_check(at_us(100)));   // one interval elapsed
  EXPECT_FALSE(m.record_and_check(at_us(150)));
}

TEST(TokenBucketMonitorTest, FractionalAccrualCarriesOver) {
  TokenBucketMonitor m(Duration::us(100), 1);
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  EXPECT_FALSE(m.record_and_check(at_us(60)));   // 0.6 intervals
  // 0.6 + 0.6 = 1.2 intervals since the first admission -> a token exists.
  EXPECT_TRUE(m.record_and_check(at_us(120)));
}

TEST(TokenBucketMonitorTest, TokensCapAtDepth) {
  TokenBucketMonitor m(Duration::us(10), 2);
  // A long quiet period must not accumulate more than `depth` tokens.
  m.record_and_check(at_us(0));
  EXPECT_EQ(m.tokens_at(at_us(10'000)), 2u);
  EXPECT_TRUE(m.record_and_check(at_us(10'000)));
  EXPECT_TRUE(m.record_and_check(at_us(10'001)));
  EXPECT_FALSE(m.record_and_check(at_us(10'002)));
}

TEST(TokenBucketMonitorTest, TokensAtIsPure) {
  TokenBucketMonitor m(Duration::us(100), 2);
  EXPECT_EQ(m.tokens_at(at_us(0)), 2u);
  EXPECT_EQ(m.tokens_at(at_us(0)), 2u);
  m.record_and_check(at_us(0));
  EXPECT_EQ(m.tokens_at(at_us(0)), 1u);
}

TEST(TokenBucketMonitorTest, AdmitsBurstsDeltaMinWouldDeny) {
  // The qualitative difference to the delta^- monitor: back-to-back
  // admissions are possible up to the bucket depth.
  TokenBucketMonitor bucket(Duration::us(100), 3);
  DeltaMinMonitor dmin(Duration::us(100));
  int bucket_admits = 0;
  int dmin_admits = 0;
  for (int i = 0; i < 3; ++i) {
    bucket_admits += bucket.record_and_check(at_us(i));
    dmin_admits += dmin.record_and_check(at_us(i));
  }
  EXPECT_EQ(bucket_admits, 3);
  EXPECT_EQ(dmin_admits, 1);
}

TEST(TokenBucketMonitorTest, LongTermRateMatchesDeltaMin) {
  // Over a long window both shapers admit ~1 event per interval.
  TokenBucketMonitor bucket(Duration::us(100), 3);
  sim::Xoshiro256 rng(5);
  TimePoint t = TimePoint::origin();
  std::uint64_t admitted = 0;
  constexpr int kEvents = 20000;
  for (int i = 0; i < kEvents; ++i) {
    t += Duration::from_us_f(rng.exponential(50.0));  // 2x overload
    admitted += bucket.record_and_check(t);
  }
  const double window_us = t.as_us();
  const double expected = window_us / 100.0;
  EXPECT_NEAR(static_cast<double>(admitted), expected, expected * 0.05);
}

class BucketInterferenceBoundTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BucketInterferenceBoundTest, AdmissionsPerWindowWithinBound) {
  // In any window dt the bucket admits at most depth + ceil(dt/interval).
  const std::uint32_t depth = GetParam();
  const Duration interval = Duration::us(100);
  TokenBucketMonitor m(interval, depth);
  sim::Xoshiro256 rng(7 + depth);
  std::vector<TimePoint> admitted;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 5000; ++i) {
    t += Duration::from_us_f(rng.exponential(20.0));  // heavy overload
    if (m.record_and_check(t)) admitted.push_back(t);
  }
  // Check the bound over sliding windows of several sizes.
  for (const std::int64_t win_us : {100, 500, 2000}) {
    const Duration win = Duration::us(win_us);
    const auto bound = static_cast<std::size_t>(depth + Duration::ceil_div(win, interval));
    for (std::size_t i = 0; i < admitted.size(); ++i) {
      std::size_t count = 0;
      for (std::size_t j = i; j < admitted.size() && admitted[j] - admitted[i] < win; ++j) {
        ++count;
      }
      ASSERT_LE(count, bound) << "window " << win_us << "us at index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, BucketInterferenceBoundTest,
                         ::testing::Values(1u, 3u, 8u));

TEST(TokenBucketInterferenceTest, FormulaMatchesDefinition) {
  const Duration c = Duration::us(50);
  EXPECT_EQ(token_bucket_interference(Duration::us(1), Duration::us(100), 3, c),
            c * 4);  // depth + 1
  EXPECT_EQ(token_bucket_interference(Duration::us(1000), Duration::us(100), 3, c),
            c * 13);
  EXPECT_EQ(token_bucket_interference(Duration::zero(), Duration::us(100), 3, c),
            Duration::zero());
  // The bucket bound is always weaker than Eq. 14 for equal rate.
  EXPECT_GT(token_bucket_interference(Duration::us(1000), Duration::us(100), 3, c),
            c * 10);
}

}  // namespace
}  // namespace rthv::mon
