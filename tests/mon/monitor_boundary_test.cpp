// Boundary regression for the delta^- admission condition under clock
// jitter: an activation at exactly d_min after the previous one is admitted
// and one tick (1 ns) under is denied, for every monitor variant.
//
// The fault subsystem's drift injector moves activation instants off the
// analysis grid, so these tests place each probe pair at a seeded random
// absolute offset: shifting both activations together preserves their
// distance, and the admit/deny decision must not depend on where in the
// timeline the pair lands.
#include <gtest/gtest.h>

#include "mon/learning_monitor.hpp"
#include "mon/monitor.hpp"
#include "sim/random.hpp"

namespace rthv::mon {
namespace {

using sim::Duration;
using sim::TimePoint;

constexpr Duration kDmin = Duration::us(1444);
constexpr int kTrials = 64;

TimePoint jittered_base(sim::Xoshiro256& rng) {
  // Anywhere in the first simulated second, at full 1 ns resolution.
  return TimePoint::at_ns(
      static_cast<std::int64_t>(rng.uniform_int(0, 1'000'000'000)));
}

TEST(MonitorBoundaryTest, DeltaMinAdmitsAtExactlyDminUnderJitter) {
  sim::Xoshiro256 rng(2014);
  for (int trial = 0; trial < kTrials; ++trial) {
    const TimePoint base = jittered_base(rng);
    DeltaMinMonitor m(kDmin);
    ASSERT_TRUE(m.record_and_check(base));
    EXPECT_TRUE(m.record_and_check(base + kDmin))
        << "exact d_min denied at base " << base.count_ns() << " ns";
  }
}

TEST(MonitorBoundaryTest, DeltaMinDeniesOneTickUnderDminUnderJitter) {
  sim::Xoshiro256 rng(2015);
  for (int trial = 0; trial < kTrials; ++trial) {
    const TimePoint base = jittered_base(rng);
    DeltaMinMonitor m(kDmin);
    ASSERT_TRUE(m.record_and_check(base));
    EXPECT_FALSE(m.record_and_check(base + kDmin - Duration::ns(1)))
        << "d_min - 1 ns admitted at base " << base.count_ns() << " ns";
  }
}

TEST(MonitorBoundaryTest, DeltaVectorAdmitsAtExactlyDminUnderJitter) {
  sim::Xoshiro256 rng(2016);
  for (int trial = 0; trial < kTrials; ++trial) {
    const TimePoint base = jittered_base(rng);
    DeltaVectorMonitor m(DeltaVector{kDmin, kDmin * 2});
    ASSERT_TRUE(m.record_and_check(base));
    ASSERT_TRUE(m.record_and_check(base + kDmin * 2));
    // Pairwise distance exactly d_min, triple span exactly delta^-[2].
    EXPECT_TRUE(m.record_and_check(base + kDmin * 3))
        << "exact boundary denied at base " << base.count_ns() << " ns";
  }
}

TEST(MonitorBoundaryTest, DeltaVectorDeniesOneTickUnderEitherEntry) {
  sim::Xoshiro256 rng(2017);
  for (int trial = 0; trial < kTrials; ++trial) {
    const TimePoint base = jittered_base(rng);
    {
      // Pairwise entry one tick short.
      DeltaVectorMonitor m(DeltaVector{kDmin, kDmin * 2});
      ASSERT_TRUE(m.record_and_check(base));
      EXPECT_FALSE(m.record_and_check(base + kDmin - Duration::ns(1)));
    }
    {
      // Pairwise entry satisfied, triple entry one tick short.
      DeltaVectorMonitor m(DeltaVector{kDmin, kDmin * 3});
      ASSERT_TRUE(m.record_and_check(base));
      ASSERT_TRUE(m.record_and_check(base + kDmin));
      EXPECT_FALSE(m.record_and_check(base + kDmin * 3 - Duration::ns(1)))
          << "triple span one tick under delta^-[2] admitted at base "
          << base.count_ns() << " ns";
    }
  }
}

/// A learning monitor trained on exact d_min spacing with bound {d_min}
/// enforces exactly d_min once running (Algorithm 2 raises nothing here).
LearningDeltaMonitor trained_monitor(TimePoint base) {
  LearningDeltaMonitor m(/*depth=*/1, /*learning_events=*/4,
                         DeltaVector{kDmin});
  TimePoint t = base;
  for (int i = 0; i < 4; ++i) {
    m.record_and_check(t);
    t = t + kDmin;
  }
  EXPECT_EQ(m.phase(), LearningDeltaMonitor::Phase::kRunning);
  return m;
}

TEST(MonitorBoundaryTest, LearningMonitorAdmitsAtExactlyDminUnderJitter) {
  sim::Xoshiro256 rng(2018);
  for (int trial = 0; trial < kTrials; ++trial) {
    const TimePoint base = jittered_base(rng);
    auto m = trained_monitor(base);
    ASSERT_EQ(m.enforced().size(), 1u);
    ASSERT_EQ(m.enforced()[0], kDmin);
    EXPECT_TRUE(m.record_and_check(base + kDmin * 4))
        << "exact d_min denied at base " << base.count_ns() << " ns";
  }
}

TEST(MonitorBoundaryTest, LearningMonitorDeniesOneTickUnderDminUnderJitter) {
  sim::Xoshiro256 rng(2019);
  for (int trial = 0; trial < kTrials; ++trial) {
    const TimePoint base = jittered_base(rng);
    auto m = trained_monitor(base);
    EXPECT_FALSE(m.record_and_check(base + kDmin * 4 - Duration::ns(1)))
        << "d_min - 1 ns admitted at base " << base.count_ns() << " ns";
  }
}

}  // namespace
}  // namespace rthv::mon
