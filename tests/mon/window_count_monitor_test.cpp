#include "mon/window_count_monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"

namespace rthv::mon {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_us(std::int64_t t) { return TimePoint::at_us(t); }

TEST(WindowCountMonitorTest, AdmitsBurstUpToMax) {
  WindowCountMonitor m(Duration::us(1000), 3);
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  EXPECT_TRUE(m.record_and_check(at_us(1)));
  EXPECT_TRUE(m.record_and_check(at_us(2)));
  EXPECT_FALSE(m.record_and_check(at_us(3)));
  EXPECT_EQ(m.in_window(at_us(3)), 3u);
}

TEST(WindowCountMonitorTest, WindowSlidesOpen) {
  WindowCountMonitor m(Duration::us(1000), 2);
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(100));
  EXPECT_FALSE(m.record_and_check(at_us(999)));
  // 1000us after the first admission, one slot frees up.
  EXPECT_TRUE(m.record_and_check(at_us(1000)));
  // But the next needs 1000us after the admission at 100.
  EXPECT_FALSE(m.record_and_check(at_us(1050)));
  EXPECT_TRUE(m.record_and_check(at_us(1100)));
}

TEST(WindowCountMonitorTest, DeniedEventsDoNotConsumeBudget) {
  WindowCountMonitor m(Duration::us(1000), 1);
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  for (int i = 1; i < 100; ++i) EXPECT_FALSE(m.record_and_check(at_us(i)));
  // A storm of denials does not push the window.
  EXPECT_TRUE(m.record_and_check(at_us(1000)));
}

TEST(WindowCountMonitorTest, MaxOneEqualsDeltaMin) {
  WindowCountMonitor wc(Duration::us(500), 1);
  DeltaMinMonitor dm(Duration::us(500));
  // Identical decisions on a mixed pattern -- EXCEPT that the delta^- monitor
  // measures against every arrival while the window counter only counts
  // admissions, so feed a conforming-then-violating-then-waiting pattern
  // where both semantics agree.
  const std::int64_t times[] = {0, 500, 1300, 1800};
  for (const auto t : times) {
    EXPECT_EQ(wc.record_and_check(at_us(t)), dm.record_and_check(at_us(t))) << t;
  }
}

class WindowBoundTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowBoundTest, AdmissionsPerWindowNeverExceedMax) {
  const std::uint32_t max_events = GetParam();
  const Duration window = Duration::us(700);
  WindowCountMonitor m(window, max_events);
  sim::Xoshiro256 rng(91 + max_events);
  std::vector<TimePoint> admitted;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 5000; ++i) {
    t += Duration::from_us_f(rng.exponential(60.0));  // heavy overload
    if (m.record_and_check(t)) admitted.push_back(t);
  }
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    std::size_t count = 0;
    for (std::size_t j = i; j < admitted.size() && admitted[j] - admitted[i] < window;
         ++j) {
      ++count;
    }
    ASSERT_LE(count, max_events) << "at admission " << i;
  }
  // Long-run admitted rate ~ max_events per (window + residual wait): after
  // a window opens, the next admission waits for the next arrival, which for
  // exponential gaps overshoots by the mean gap (memorylessness).
  const double cycle_us = static_cast<double>(window.count_ns()) / 1000.0 + 60.0;
  const double expected = t.as_us() / cycle_us * max_events;
  EXPECT_NEAR(static_cast<double>(admitted.size()), expected, expected * 0.10);
}

INSTANTIATE_TEST_SUITE_P(Maxima, WindowBoundTest, ::testing::Values(1u, 3u, 8u));

TEST(WindowCountInterferenceTest, FormulaMatchesDefinition) {
  const Duration c = Duration::us(50);
  // One window fits twice (straddling): (ceil(1/1000)+1) * 2 admissions.
  EXPECT_EQ(window_count_interference(Duration::us(1), Duration::us(1000), 2, c),
            c * 4);
  EXPECT_EQ(window_count_interference(Duration::us(2000), Duration::us(1000), 2, c),
            c * 6);
  EXPECT_EQ(window_count_interference(Duration::zero(), Duration::us(1000), 2, c),
            Duration::zero());
}

}  // namespace
}  // namespace rthv::mon
