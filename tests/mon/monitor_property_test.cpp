// Property tests of the monitoring invariants the paper's correctness
// argument rests on:
//  1. (Soundness) the subsequence of ADMITTED activations always satisfies
//     the delta^- condition -- this is what bounds the interference (Eq. 14).
//  2. (Non-starvation under conformance) a trace that satisfies the
//     condition is admitted in full.
//  3. The learning monitor never learns distances smaller than the bound
//     after adjustment.
#include <gtest/gtest.h>

#include <vector>

#include "mon/learning_monitor.hpp"
#include "mon/monitor.hpp"
#include "sim/random.hpp"

namespace rthv::mon {
namespace {

using sim::Duration;
using sim::TimePoint;

std::vector<TimePoint> random_trace(std::uint64_t seed, std::size_t n,
                                    double mean_gap_us) {
  sim::Xoshiro256 rng(seed);
  std::vector<TimePoint> out;
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < n; ++i) {
    t += Duration::from_us_f(rng.exponential(mean_gap_us));
    out.push_back(t);
  }
  return out;
}

bool satisfies_delta(const std::vector<TimePoint>& events, const DeltaVector& deltas) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t k = 0; k < deltas.size(); ++k) {
      if (i > k && events[i] - events[i - k - 1] < deltas[k]) return false;
    }
  }
  return true;
}

struct PropertyCase {
  std::uint64_t seed;
  double mean_gap_us;
  std::size_t depth;
};

class AdmittedSubsequenceTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AdmittedSubsequenceTest, AdmittedEventsSatisfyDeltaCondition) {
  const auto p = GetParam();
  DeltaVector deltas;
  for (std::size_t k = 0; k < p.depth; ++k) {
    deltas.push_back(Duration::from_us_f(p.mean_gap_us * static_cast<double>(k + 1)));
  }
  DeltaVectorMonitor monitor(deltas);
  std::vector<TimePoint> admitted;
  for (const auto t : random_trace(p.seed, 2000, p.mean_gap_us)) {
    if (monitor.record_and_check(t)) admitted.push_back(t);
  }
  // Soundness: every pair of admitted events k+1 apart spans >= deltas[k].
  // (The monitor checks against ALL arrivals, which is stricter than
  // checking admitted-only, so this must hold a fortiori.)
  EXPECT_TRUE(satisfies_delta(admitted, deltas));
  EXPECT_GT(admitted.size(), 0u);
  EXPECT_LT(admitted.size(), 2000u);  // some random gaps must violate
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, AdmittedSubsequenceTest,
    ::testing::Values(PropertyCase{1, 100.0, 1}, PropertyCase{2, 100.0, 3},
                      PropertyCase{3, 50.0, 5}, PropertyCase{4, 1000.0, 2},
                      PropertyCase{5, 10.0, 4}, PropertyCase{6, 250.0, 1}));

class ConformingTraceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConformingTraceTest, FullyConformingTraceFullyAdmitted) {
  // Build a trace whose gaps are all >= d_min by flooring, then check the
  // l = 1 monitor admits every event.
  sim::Xoshiro256 rng(GetParam());
  const Duration d_min = Duration::us(100);
  DeltaMinMonitor monitor(d_min);
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 1000; ++i) {
    const auto gap = std::max(d_min, Duration::from_us_f(rng.exponential(100.0)));
    t += gap;
    EXPECT_TRUE(monitor.record_and_check(t));
  }
  EXPECT_EQ(monitor.denied(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformingTraceTest, ::testing::Values(10u, 11u, 12u));

class LearningBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LearningBoundTest, EnforcedVectorRespectsBoundAndMonotone) {
  sim::Xoshiro256 rng(GetParam());
  const std::size_t depth = 4;
  DeltaVector bound;
  for (std::size_t k = 0; k < depth; ++k) {
    bound.push_back(Duration::us(50 * static_cast<std::int64_t>(k + 1)));
  }
  LearningDeltaMonitor monitor(depth, 500, bound);
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 500; ++i) {
    t += Duration::from_us_f(rng.exponential(80.0));
    monitor.record_and_check(t);
  }
  ASSERT_EQ(monitor.phase(), LearningDeltaMonitor::Phase::kRunning);
  const auto& enforced = monitor.enforced();
  for (std::size_t k = 0; k < depth; ++k) {
    EXPECT_GE(enforced[k], bound[k]) << "entry " << k;
    if (k > 0) {
      EXPECT_GE(enforced[k], enforced[k - 1]);
    }
  }
  // Learned entries are true minima of the observed trace, so enforced is
  // also >= learned by construction.
  for (std::size_t k = 0; k < depth; ++k) {
    EXPECT_GE(enforced[k], monitor.learned()[k] < bound[k] ? bound[k]
                                                           : monitor.learned()[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearningBoundTest, ::testing::Values(20u, 21u, 22u, 23u));

TEST(MonitorInterferenceBoundTest, AdmissionsPerWindowBounded) {
  // Eq. 14's premise: in any window dt there are at most ceil(dt/d_min)
  // admitted activations. Verified on a hostile trace (bursts).
  const Duration d_min = Duration::us(100);
  DeltaMinMonitor monitor(d_min);
  sim::Xoshiro256 rng(77);
  std::vector<TimePoint> admitted;
  TimePoint t = TimePoint::origin();
  for (int i = 0; i < 5000; ++i) {
    // Bursty: 80% tiny gaps, 20% large.
    const double gap_us = rng.uniform01() < 0.8 ? rng.exponential(10.0)
                                                : rng.exponential(500.0);
    t += Duration::from_us_f(gap_us);
    if (monitor.record_and_check(t)) admitted.push_back(t);
  }
  ASSERT_GT(admitted.size(), 2u);
  for (std::size_t i = 0; i + 1 < admitted.size(); ++i) {
    // Any two consecutive admissions are >= d_min apart, which implies the
    // window bound for all window sizes.
    EXPECT_GE(admitted[i + 1] - admitted[i], d_min);
  }
}

}  // namespace
}  // namespace rthv::mon
