#include "mon/learning_monitor.hpp"

#include <gtest/gtest.h>

namespace rthv::mon {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_us(std::int64_t t) { return TimePoint::at_us(t); }

TEST(LearningDeltaMonitorTest, DeniesEverythingWhileLearning) {
  LearningDeltaMonitor m(2, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(m.record_and_check(at_us(i * 100)));
    if (i < 4) {
      EXPECT_EQ(m.phase(), LearningDeltaMonitor::Phase::kLearning);
    }
  }
  EXPECT_EQ(m.phase(), LearningDeltaMonitor::Phase::kRunning);
}

TEST(LearningDeltaMonitorTest, LearnsMinimumDistances) {
  // Algorithm 1: the learned vector holds the smallest observed spans.
  LearningDeltaMonitor m(2, 4);
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(100));  // gap 100
  m.record_and_check(at_us(130));  // gap 30, triple span 130
  m.record_and_check(at_us(200));  // gap 70, triple span 100
  const auto& learned = m.learned();
  ASSERT_EQ(learned.size(), 2u);
  EXPECT_EQ(learned[0], Duration::us(30));
  EXPECT_EQ(learned[1], Duration::us(100));
}

TEST(LearningDeltaMonitorTest, RunPhaseEnforcesLearnedPattern) {
  LearningDeltaMonitor m(1, 3);
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(50));
  m.record_and_check(at_us(100));  // learned d_min = 50
  EXPECT_EQ(m.phase(), LearningDeltaMonitor::Phase::kRunning);
  EXPECT_TRUE(m.record_and_check(at_us(150)));   // 50 apart: conforming
  EXPECT_FALSE(m.record_and_check(at_us(190)));  // 40 apart: violation
}

TEST(LearningDeltaMonitorTest, BoundRaisesLearnedDistances) {
  // Algorithm 2: learned distances below the bound are raised to it.
  LearningDeltaMonitor m(1, 3, DeltaVector{Duration::us(200)});
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(50));
  m.record_and_check(at_us(100));  // learned 50, bound 200 -> enforced 200
  EXPECT_EQ(m.enforced()[0], Duration::us(200));
  EXPECT_FALSE(m.record_and_check(at_us(250)));  // 150 < 200
  EXPECT_TRUE(m.record_and_check(at_us(450)));   // 200 apart
}

TEST(LearningDeltaMonitorTest, BoundBelowLearnedKeepsLearned) {
  LearningDeltaMonitor m(1, 3, DeltaVector{Duration::us(10)});
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(100));
  m.record_and_check(at_us(200));  // learned 100 > bound 10
  EXPECT_EQ(m.enforced()[0], Duration::us(100));
}

TEST(LearningDeltaMonitorTest, UnobservedDepthClampedAndMonotone) {
  // Learning with depth 3 but only 2 activations: entry [1] observed once,
  // entry [2] never; the enforced vector must still be monotone and finite.
  LearningDeltaMonitor m(3, 2);
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(70));
  const auto& enforced = m.enforced();
  ASSERT_EQ(enforced.size(), 3u);
  EXPECT_EQ(enforced[0], Duration::us(70));
  EXPECT_LE(enforced[0], enforced[1]);
  EXPECT_LE(enforced[1], enforced[2]);
  EXPECT_LT(enforced[2], Duration::max());
}

TEST(LearningDeltaMonitorTest, ZeroLearningEventsStartsRunningImmediately) {
  LearningDeltaMonitor m(1, 0, DeltaVector{Duration::us(100)});
  EXPECT_EQ(m.phase(), LearningDeltaMonitor::Phase::kRunning);
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  EXPECT_FALSE(m.record_and_check(at_us(10)));
}

TEST(LearningDeltaMonitorTest, LearningEventsRemainingCountsDown) {
  LearningDeltaMonitor m(1, 3);
  EXPECT_EQ(m.learning_events_remaining(), 3u);
  m.record_and_check(at_us(0));
  EXPECT_EQ(m.learning_events_remaining(), 2u);
  m.record_and_check(at_us(10));
  m.record_and_check(at_us(20));
  EXPECT_EQ(m.learning_events_remaining(), 0u);
}

TEST(LearningDeltaMonitorTest, CrossPhaseDistancesUseFullHistory) {
  // The tracebuffer carries over from learning into running: an activation
  // right after the phase switch is checked against learning-phase events.
  LearningDeltaMonitor m(1, 2);
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(100));  // learned d_min = 100; now running
  EXPECT_FALSE(m.record_and_check(at_us(150)));  // 50 after last learning event
  EXPECT_TRUE(m.record_and_check(at_us(250)));
}

}  // namespace
}  // namespace rthv::mon
