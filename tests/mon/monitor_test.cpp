#include "mon/monitor.hpp"

#include <gtest/gtest.h>

namespace rthv::mon {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_us(std::int64_t t) { return TimePoint::at_us(t); }

TEST(DeltaMinMonitorTest, FirstActivationAlwaysAdmitted) {
  DeltaMinMonitor m(Duration::us(100));
  EXPECT_TRUE(m.record_and_check(at_us(5)));
  EXPECT_EQ(m.admitted(), 1u);
}

TEST(DeltaMinMonitorTest, AdmitsAtExactlyDmin) {
  DeltaMinMonitor m(Duration::us(100));
  m.record_and_check(at_us(0));
  EXPECT_TRUE(m.record_and_check(at_us(100)));
}

TEST(DeltaMinMonitorTest, DeniesBelowDmin) {
  DeltaMinMonitor m(Duration::us(100));
  m.record_and_check(at_us(0));
  EXPECT_FALSE(m.record_and_check(at_us(99)));
  EXPECT_EQ(m.denied(), 1u);
}

TEST(DeltaMinMonitorTest, DeniedActivationStillRecorded) {
  DeltaMinMonitor m(Duration::us(100));
  m.record_and_check(at_us(0));
  EXPECT_FALSE(m.record_and_check(at_us(50)));   // violation, recorded
  EXPECT_FALSE(m.record_and_check(at_us(120)));  // only 70us after the burst event
  EXPECT_TRUE(m.record_and_check(at_us(220)));
}

TEST(DeltaMinMonitorTest, CountersTrackDecisions) {
  DeltaMinMonitor m(Duration::us(10));
  m.record_and_check(at_us(0));
  m.record_and_check(at_us(5));
  m.record_and_check(at_us(20));
  EXPECT_EQ(m.admitted(), 2u);
  EXPECT_EQ(m.denied(), 1u);
  EXPECT_EQ(m.observed(), 3u);
}

TEST(DeltaVectorMonitorTest, SingleEntryBehavesLikeDeltaMin) {
  DeltaVectorMonitor v(DeltaVector{Duration::us(100)});
  DeltaMinMonitor m(Duration::us(100));
  const std::int64_t times[] = {0, 40, 150, 249, 250, 600};
  for (const auto t : times) {
    EXPECT_EQ(v.record_and_check(at_us(t)), m.record_and_check(at_us(t))) << "t=" << t;
  }
}

TEST(DeltaVectorMonitorTest, DeeperEntryDeniesCloseTriple) {
  // Two consecutive events may be 10us apart, but any three must span 100us.
  DeltaVectorMonitor m(DeltaVector{Duration::us(10), Duration::us(100)});
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  EXPECT_TRUE(m.record_and_check(at_us(10)));
  // 20us after the first event: pairwise OK (10us), triple span 20 < 100.
  EXPECT_FALSE(m.record_and_check(at_us(20)));
  // 100us after event 0 and >=10us after the last: conforming.
  EXPECT_TRUE(m.record_and_check(at_us(110)));
}

TEST(DeltaVectorMonitorTest, PeekDoesNotRecord) {
  DeltaVectorMonitor m(DeltaVector{Duration::us(10)});
  m.record_and_check(at_us(0));
  EXPECT_FALSE(m.peek(at_us(5)));
  EXPECT_TRUE(m.peek(at_us(15)));
  // peek must not have pushed anything: distance still measured from t=0.
  EXPECT_TRUE(m.record_and_check(at_us(10)));
}

TEST(DeltaVectorMonitorTest, TracebufferWindowSlides) {
  DeltaVectorMonitor m(DeltaVector{Duration::us(10), Duration::us(30)});
  EXPECT_TRUE(m.record_and_check(at_us(0)));
  EXPECT_TRUE(m.record_and_check(at_us(30)));
  EXPECT_TRUE(m.record_and_check(at_us(60)));
  // 70us: 10 after 60 (ok), 40 after 30 (ok, needs 30).
  EXPECT_TRUE(m.record_and_check(at_us(70)));
  // 79us: 9 after 70 -> deny.
  EXPECT_FALSE(m.record_and_check(at_us(79)));
}

TEST(AlwaysAdmitMonitorTest, AdmitsEverything) {
  AlwaysAdmitMonitor m;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(m.record_and_check(at_us(i)));
  EXPECT_EQ(m.admitted(), 5u);
  EXPECT_EQ(m.denied(), 0u);
}

TEST(ScaleForLoadFractionTest, QuarterLoadQuadruplesDistances) {
  const DeltaVector in{Duration::us(100), Duration::us(250)};
  const auto out = scale_for_load_fraction(in, 0.25);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Duration::us(400));
  EXPECT_EQ(out[1], Duration::us(1000));
}

TEST(ScaleForLoadFractionTest, FullLoadIsIdentity) {
  const DeltaVector in{Duration::us(123)};
  const auto out = scale_for_load_fraction(in, 1.0);
  EXPECT_EQ(out[0], Duration::us(123));
}

}  // namespace
}  // namespace rthv::mon
