// Randomized differential tests for the admission kernels (tentpole part 2):
// the branch-free AND-reduction (and, where the host supports it, the AVX2
// instantiation) must produce bit-identical verdicts to the early-exit
// scalar reference on every input, and the batched monitor API must be
// indistinguishable from n scalar record_and_check calls -- verdicts,
// admission counters, and observed-distance bookkeeping included.
//
// tests/run_sanitized.sh builds this suite under ASan+UBSan, so the kernel
// differential doubles as a bounds/overflow probe over random windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "mon/admit_kernel.hpp"
#include "mon/monitor.hpp"
#include "sim/random.hpp"

namespace rthv::mon {
namespace {

using sim::Duration;
using sim::TimePoint;

/// Restores the process-wide kernel knob on scope exit so a failing test
/// cannot leak kScalar into unrelated tests in the same binary.
class KnobGuard {
 public:
  KnobGuard() : saved_(admit_kernel()) {}
  ~KnobGuard() { set_admit_kernel(saved_); }

 private:
  AdmitKernel saved_;
};

/// Random monotone non-decreasing delta vector of the given depth, with
/// distances in the hundreds-of-microseconds range the paper's Appendix A
/// tables use.
DeltaVector random_deltas(sim::Xoshiro256& rng, std::size_t depth) {
  DeltaVector deltas;
  std::int64_t d = 10'000 + static_cast<std::int64_t>(rng.uniform_int(0, 200'000));
  for (std::size_t k = 0; k < depth; ++k) {
    deltas.push_back(Duration::ns(d));
    d += static_cast<std::int64_t>(rng.uniform_int(0, 400'000));
  }
  return deltas;
}

/// Activation trace whose gaps hover around the consecutive-event distance
/// `d0`: roughly half the activations land just inside the forbidden zone
/// and half just outside (including exact-boundary gaps, which probe the
/// >= edge of the predicate), so verdicts flip constantly.
std::vector<TimePoint> near_saturation_trace(sim::Xoshiro256& rng, std::size_t n,
                                             std::int64_t d0_ns) {
  std::vector<TimePoint> out;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t roll = rng.uniform_int(0, 9);
    std::int64_t gap;
    if (roll == 0) {
      gap = d0_ns;  // exactly on the boundary: must be admitted
    } else if (roll <= 5) {
      gap = d0_ns + static_cast<std::int64_t>(rng.uniform_int(0, d0_ns > 0 ? static_cast<std::uint64_t>(d0_ns) : 1));
    } else {
      gap = 1 + static_cast<std::int64_t>(
                    rng.uniform_int(0, d0_ns > 1 ? static_cast<std::uint64_t>(d0_ns - 1) : 1));
    }
    t += gap;
    out.push_back(TimePoint::at_ns(t));
  }
  return out;
}

TEST(AdmitKernelDifferentialTest, VectorMatchesScalarOnRandomWindows) {
  sim::Xoshiro256 rng(0x5eed001);
  for (int trial = 0; trial < 20'000; ++trial) {
    // Depths straddle kAvx2MinDepth so both the inlined AND-reduction and
    // the AVX2 clone (full 4-lane steps plus scalar tail) get exercised.
    const std::size_t l = 1 + rng.uniform_int(0, 23);
    std::vector<std::int64_t> win(l);
    std::vector<std::int64_t> delta(l);
    std::int64_t now = static_cast<std::int64_t>(rng.uniform_int(0, 4'000'000'000));
    for (std::size_t i = 0; i < l; ++i) {
      win[i] = now - static_cast<std::int64_t>(rng.uniform_int(0, 2'000'000));
      delta[i] = static_cast<std::int64_t>(rng.uniform_int(0, 2'000'000));
    }
    const bool scalar = admit_full_scalar(win.data(), delta.data(), l, now);
    const bool vector = admit_full_vector(win.data(), delta.data(), l, now);
    EXPECT_EQ(scalar, vector) << "trial " << trial << " depth " << l;
#if RTHV_ADMIT_KERNEL_AVX2
    if (detail::kHaveAvx2) {
      const bool avx2 = admit_full_vector_avx2(win.data(), delta.data(), l, now);
      EXPECT_EQ(scalar, avx2) << "trial " << trial << " depth " << l;
    }
#endif
  }
}

TEST(AdmitKernelDifferentialTest, MonitorVerdictsIdenticalAcrossKernels) {
  KnobGuard guard;
  sim::Xoshiro256 rng(0x5eed002);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t depth = 1 + rng.uniform_int(0, 19);
    const DeltaVector deltas = random_deltas(rng, depth);
    const auto trace =
        near_saturation_trace(rng, 3000, deltas.front().count_ns());

    DeltaVectorMonitor vec_mon(deltas);
    DeltaVectorMonitor sca_mon(deltas);
    for (const auto t : trace) {
      set_admit_kernel(AdmitKernel::kVector);
      const bool v = vec_mon.record_and_check(t);
      set_admit_kernel(AdmitKernel::kScalar);
      const bool s = sca_mon.record_and_check(t);
      ASSERT_EQ(v, s) << "trial " << trial << " at t=" << t.count_ns();
    }
    EXPECT_EQ(vec_mon.admitted(), sca_mon.admitted());
    EXPECT_EQ(vec_mon.denied(), sca_mon.denied());
    EXPECT_EQ(vec_mon.last_observed_distance(), sca_mon.last_observed_distance());
  }
}

TEST(AdmitKernelDifferentialTest, BatchedMatchesScalarCallsOnRandomBatches) {
  KnobGuard guard;
  set_admit_kernel(AdmitKernel::kVector);
  sim::Xoshiro256 rng(0x5eed003);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t depth = 1 + rng.uniform_int(0, 11);
    const DeltaVector deltas = random_deltas(rng, depth);
    const auto trace =
        near_saturation_trace(rng, 4000, deltas.front().count_ns());

    DeltaVectorMonitor batch_mon(deltas);
    DeltaVectorMonitor single_mon(deltas);
    std::size_t pos = 0;
    while (pos < trace.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.uniform_int(0, 63), trace.size() - pos);
      std::array<std::uint8_t, 64> verdicts{};
      batch_mon.record_and_check_batch(trace.data() + pos, n, verdicts.data());
      for (std::size_t i = 0; i < n; ++i) {
        const bool single = single_mon.record_and_check(trace[pos + i]);
        ASSERT_EQ(verdicts[i] != 0, single)
            << "trial " << trial << " batch at " << pos << " item " << i;
      }
      pos += n;
    }
    EXPECT_EQ(batch_mon.admitted(), single_mon.admitted());
    EXPECT_EQ(batch_mon.denied(), single_mon.denied());
    EXPECT_EQ(batch_mon.last_observed_distance(), single_mon.last_observed_distance());
  }
}

// Interleaving several monitors of different depths through the batch API
// models the hypervisor gathering per-source runs out of one IRQ burst:
// each monitor must judge exactly the subsequence addressed to it, with no
// state bleed through the process-wide kernel knob.
TEST(AdmitKernelDifferentialTest, InterleavedMonitorsStayIndependent) {
  KnobGuard guard;
  set_admit_kernel(AdmitKernel::kVector);
  sim::Xoshiro256 rng(0x5eed004);
  constexpr std::size_t kMonitors = 3;
  std::vector<DeltaVector> deltas;
  std::vector<std::unique_ptr<DeltaVectorMonitor>> batched;
  std::vector<std::unique_ptr<DeltaVectorMonitor>> reference;
  for (std::size_t m = 0; m < kMonitors; ++m) {
    deltas.push_back(random_deltas(rng, 2 + 3 * m));
    batched.push_back(std::make_unique<DeltaVectorMonitor>(deltas[m]));
    reference.push_back(std::make_unique<DeltaVectorMonitor>(deltas[m]));
  }
  std::array<std::vector<TimePoint>, kMonitors> streams;
  for (std::size_t m = 0; m < kMonitors; ++m) {
    streams[m] = near_saturation_trace(rng, 1500, deltas[m].front().count_ns());
  }
  std::array<std::size_t, kMonitors> cursor{};
  for (int round = 0; round < 400; ++round) {
    const std::size_t m = rng.uniform_int(0, kMonitors - 1);
    const std::size_t left = streams[m].size() - cursor[m];
    if (left == 0) continue;
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_int(0, 15), left);
    std::array<std::uint8_t, 16> verdicts{};
    batched[m]->record_and_check_batch(streams[m].data() + cursor[m], n,
                                       verdicts.data());
    for (std::size_t i = 0; i < n; ++i) {
      const bool single = reference[m]->record_and_check(streams[m][cursor[m] + i]);
      ASSERT_EQ(verdicts[i] != 0, single) << "monitor " << m << " item " << i;
    }
    cursor[m] += n;
  }
  for (std::size_t m = 0; m < kMonitors; ++m) {
    EXPECT_EQ(batched[m]->admitted(), reference[m]->admitted());
    EXPECT_EQ(batched[m]->denied(), reference[m]->denied());
  }
}

}  // namespace
}  // namespace rthv::mon
