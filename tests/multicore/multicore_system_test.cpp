// System tests of the multi-core platform: deterministic (time, core, seq)
// merging, cross-core IRQ routing, contention-aware admission against the
// interference oracle, cache coloring, core-relabel invariance, --jobs
// identity, and full-state checkpoint/restore.
#include "core/multicore_system.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_loader.hpp"
#include "exp/sweep_runner.hpp"
#include "fault/fault_engine.hpp"
#include "fault/oracle.hpp"
#include "workload/generators.hpp"

namespace rthv::core {
namespace {

using sim::Duration;
using sim::TimePoint;

/// Contended mixed-criticality setup: core 0 hosts an application partition
/// plus the hard-RT subscriber of a monitored, interposing IRQ source whose
/// bottom handler issues an interconnect burst; every other core hosts one
/// best-effort bandwidth hog whose color mask overlaps the subscriber's.
SystemConfig contended_config(std::uint32_t cores) {
  SystemConfig cfg;
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.interconnect.num_cores = cores;
  cfg.interconnect.num_colors = 16;
  cfg.interconnect.conflict_access_ns = 4;
  cfg.interconnect.half_load_accesses = 2000;

  PartitionSpec app;
  app.name = "app";
  app.slot_length = Duration::us(6000);
  app.core = 0;
  app.color_mask = 0x00FFu;
  cfg.partitions.push_back(app);

  PartitionSpec rt;
  rt.name = "rt";
  rt.slot_length = Duration::us(6000);
  rt.core = 0;
  rt.color_mask = 0x00FFu;
  cfg.partitions.push_back(rt);

  for (std::uint32_t c = 1; c < cores; ++c) {
    PartitionSpec hog;
    hog.name = "hog" + std::to_string(c);
    hog.slot_length = Duration::us(6000);
    hog.core = c;
    hog.color_mask = 0x00FFu;  // overlaps the RT partition: full pressure
    hog.mem_accesses_per_us = 2000 + 500 * c;  // asymmetric, to break symmetry
    cfg.partitions.push_back(hog);
  }

  IrqSourceSpec src;
  src.name = "rt-irq";
  src.subscriber = 1;  // the rt partition
  src.core = 0;
  src.c_top = Duration::us(5);
  src.c_bottom = Duration::us(40);
  src.monitor = MonitorKind::kDeltaMin;
  src.d_min = Duration::us(1444);
  src.bh_accesses = 2000;
  cfg.sources.push_back(src);
  return cfg;
}

workload::Trace rt_trace(std::size_t count, std::uint64_t seed = 2014) {
  workload::ExponentialTraceGenerator gen(Duration::us(1444), seed,
                                          Duration::us(200));
  return gen.generate(count);
}

/// Serialized fingerprint of a finished run: merged latency summary plus the
/// full merged metrics dump (per-core and interconnect counters included).
std::string fingerprint(const MulticoreSystem& mc) {
  std::ostringstream os;
  mc.merged_recorder().write_summary(os);
  mc.metrics_snapshot().write_text(os);
  return os.str();
}

TEST(MulticoreSystemTest, ValidatesCoreAssignments) {
  auto cfg = contended_config(2);
  cfg.partitions[1].core = 2;  // out of range
  EXPECT_THROW(MulticoreSystem{cfg}, std::invalid_argument);

  cfg = contended_config(2);
  cfg.sources[0].core = 7;
  EXPECT_THROW(MulticoreSystem{cfg}, std::invalid_argument);

  cfg = contended_config(2);
  cfg.interconnect.num_cores = 3;  // core 2 hosts nothing
  EXPECT_THROW(MulticoreSystem{cfg}, std::invalid_argument);
}

TEST(MulticoreSystemTest, SplitsPartitionsAndSourcesPerCore) {
  const auto cfg = contended_config(4);
  MulticoreSystem mc(cfg);
  ASSERT_EQ(mc.num_cores(), 4u);
  EXPECT_EQ(mc.core(0).config().partitions.size(), 2u);
  EXPECT_EQ(mc.core(1).config().partitions.size(), 1u);
  EXPECT_EQ(mc.core(0).config().sources.size(), 1u);
  EXPECT_EQ(mc.core(1).config().sources.size(), 0u);
  EXPECT_EQ(mc.partition_core(1), 0u);
  EXPECT_EQ(mc.local_partition_index(2), 0u);  // hog1 is core 1's partition 0
  EXPECT_EQ(mc.source_core(0), 0u);
  // Local subscriber index was remapped with the partition split.
  EXPECT_EQ(mc.core(0).config().sources[0].subscriber, 1u);
}

TEST(MulticoreSystemTest, CrossCoreRoutingDeliversEveryActivation) {
  auto cfg = contended_config(2);
  cfg.sources[0].core = 1;  // device wired to core 1, subscriber on core 0
  MulticoreSystem mc(cfg);
  const auto trace = rt_trace(200);
  mc.attach_trace(0, trace);
  const auto done = mc.run(Duration::s(60));

  EXPECT_EQ(mc.interconnect().counters().routes, 200u);
  std::uint64_t lost = 0;
  for (std::uint32_t c = 0; c < mc.num_cores(); ++c) {
    lost += mc.core(c).platform().intc().lost_raises();
  }
  EXPECT_EQ(done + lost, 200u);
  EXPECT_GT(done, 190u);  // floor(200us) keeps latch losses rare
  // Routed activations land only on the subscriber core.
  EXPECT_EQ(mc.core(0).completed_bottom_handlers(), done);
  EXPECT_EQ(mc.core(1).completed_bottom_handlers(), 0u);
}

TEST(MulticoreSystemTest, ContendedAdmissionsChargeAndSatisfyFoldedOracle) {
  MulticoreSystem mc(contended_config(4));
  mc.enable_tracing();
  mc.attach_trace(0, rt_trace(300));
  mc.run(Duration::s(60));

  const fault::InterferenceOracle oracle(
      fault::InterferenceOracle::params_from(mc.core(0)));
  const auto report = oracle.verify(mc.core(0).trace());
  EXPECT_GT(report.interpositions, 0u);
  EXPECT_GT(report.contention_charges, 0u)
      << "hogs must generate pressure that charges admitted bursts";
  EXPECT_GT(report.total_charge_ns, 0);
  EXPECT_TRUE(report.ok()) << [&] {
    std::ostringstream os;
    report.write(os);
    return os.str();
  }();
}

TEST(MulticoreSystemTest, UnfoldedOracleRejectsContendedRun) {
  // Falsifiability of the fold: replaying the same contended trace against
  // the raw single-core bound must fail -- the contention allowance carries
  // real weight, it is not slack.
  MulticoreSystem mc(contended_config(4));
  mc.enable_tracing();
  mc.attach_trace(0, rt_trace(300));
  mc.run(Duration::s(60));

  fault::InterferenceOracle oracle(
      fault::InterferenceOracle::params_from(mc.core(0)));
  oracle.set_fold_contention(false);
  const auto report = oracle.verify(mc.core(0).trace());
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.cost_violations.empty())
      << "contention-inflated spans must exceed the uncorrected C'_BH";
}

TEST(MulticoreSystemTest, WeakenedMonitorFailsFoldedOracle) {
  // Falsifiability of the whole check with contention folded in: a monitor
  // enforcing d_min/4 admits streams the configured d_min forbids, and the
  // oracle must say so even on the normalized clock.
  auto cfg = contended_config(4);
  MulticoreSystem mc(cfg);
  fault::weaken_monitor_for_test(mc.core(0), 0, 4);
  mc.enable_tracing();
  workload::ExponentialTraceGenerator gen(Duration::us(700), 99,
                                          Duration::us(400));
  mc.attach_trace(0, gen.generate(300));
  mc.run(Duration::s(60));

  const fault::InterferenceOracle oracle(
      fault::InterferenceOracle::params_from(mc.core(0)));
  const auto report = oracle.verify(mc.core(0).trace());
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.violations.empty())
      << "sub-d_min admissions must violate the folded count check";
}

TEST(MulticoreSystemTest, DisjointColoringRemovesContentionCharges) {
  auto cfg = contended_config(4);
  cfg.partitions[0].color_mask = 0x000Fu;
  cfg.partitions[1].color_mask = 0x000Fu;  // RT pair colored away from hogs
  for (std::size_t p = 2; p < cfg.partitions.size(); ++p) {
    cfg.partitions[p].color_mask = 0xFFF0u;
  }
  MulticoreSystem mc(cfg);
  mc.enable_tracing();
  mc.attach_trace(0, rt_trace(300));
  mc.run(Duration::s(60));

  const fault::InterferenceOracle oracle(
      fault::InterferenceOracle::params_from(mc.core(0)));
  const auto report = oracle.verify(mc.core(0).trace());
  EXPECT_GT(report.interpositions, 0u);
  EXPECT_EQ(report.contention_charges, 0u)
      << "disjoint color masks must isolate the RT burst from hog pressure";
  EXPECT_TRUE(report.ok());
}

TEST(MulticoreSystemTest, RunIsIdenticalForAnyJobsCount) {
  // The merged (time, core, seq) order is a pure function of the config and
  // traces; sharding a sweep over worker threads must not change a bit.
  const auto run_one = [](std::size_t i) {
    MulticoreSystem mc(contended_config(4));
    mc.attach_trace(0, rt_trace(120, 1000 + i));
    mc.run(Duration::s(30));
    return fingerprint(mc);
  };
  exp::SweepRunner serial(1);
  exp::SweepRunner parallel(4);
  const auto a = serial.map(4, run_one);
  const auto b = parallel.map(4, run_one);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "run " << i << " differs between --jobs 1 and 4";
  }
}

TEST(MulticoreSystemTest, CoreRelabelingIsInvariant) {
  const std::vector<std::uint32_t> perm = {2, 0, 3, 1};
  const auto base = contended_config(4);
  auto relabeled = base;
  relabeled.interconnect.budgets.assign(4, hw::CoreBandwidthBudget{});
  auto budgets = base.interconnect.budgets;
  budgets.resize(4);
  for (std::uint32_t c = 0; c < 4; ++c) {
    relabeled.interconnect.budgets[perm[c]] = budgets[c];
  }
  for (auto& p : relabeled.partitions) p.core = perm[p.core];
  for (auto& s : relabeled.sources) s.core = perm[s.core];

  MulticoreSystem a(base);
  MulticoreSystem b(relabeled);
  a.attach_trace(0, rt_trace(200));
  b.attach_trace(0, rt_trace(200));
  const auto done_a = a.run(Duration::s(60));
  const auto done_b = b.run(Duration::s(60));

  EXPECT_EQ(done_a, done_b);
  const auto& ka = a.interconnect().counters();
  const auto& kb = b.interconnect().counters();
  EXPECT_EQ(ka.stall_ns_total, kb.stall_ns_total);
  EXPECT_EQ(ka.bursts_charged, kb.bursts_charged);
  EXPECT_EQ(ka.accesses_registered, kb.accesses_registered);
  EXPECT_EQ(ka.accesses_throttled, kb.accesses_throttled);
  // Each relabeled core reproduces its original counterpart exactly.
  for (std::uint32_t c = 0; c < 4; ++c) {
    std::ostringstream ma;
    std::ostringstream mb;
    a.core(c).metrics_snapshot().write_text(ma);
    b.core(perm[c]).metrics_snapshot().write_text(mb);
    EXPECT_EQ(ma.str(), mb.str()) << "core " << c << " vs relabeled " << perm[c];
  }
}

TEST(MulticoreSystemTest, SnapshotRestoreReproducesTheRun) {
  MulticoreSystem mc(contended_config(4));
  mc.enable_tracing();
  mc.attach_trace(0, rt_trace(150));
  mc.start();
  mc.run_continue(TimePoint::at_us(100'000));
  const auto snap = mc.snapshot();

  mc.run_continue(TimePoint::at_us(60'000'000));
  const auto first = fingerprint(mc);
  const auto done_first = mc.completed_bottom_handlers();

  mc.restore(snap);
  mc.run_continue(TimePoint::at_us(60'000'000));
  EXPECT_EQ(mc.completed_bottom_handlers(), done_first);
  EXPECT_EQ(fingerprint(mc), first);
}

TEST(MulticoreSystemTest, MixedCritConfigMatchesCommittedGolden) {
  // Regression pin of configs/multicore_mixed_crit.ini: a 4-core mixed-
  // criticality system (regulated bandwidth hog vs interposed hard-RT
  // subscriber) must reproduce the committed run fingerprint exactly.
  // Regenerate with RTHV_UPDATE_GOLDEN=1 ./build/tests/test_multicore.
  const auto cfg = load_config_file(std::string(RTHV_CONFIG_DIR) +
                                    "/multicore_mixed_crit.ini");
  MulticoreSystem mc(cfg);
  mc.attach_trace(0, rt_trace(200, 7));
  mc.run(Duration::s(60));

  std::ostringstream os;
  mc.merged_recorder().write_summary(os);
  const auto& k = mc.interconnect().counters();
  os << "completed " << mc.completed_bottom_handlers() << "\n"
     << "interconnect/stall_ns " << k.stall_ns_total << "\n"
     << "interconnect/accesses_registered " << k.accesses_registered << "\n"
     << "interconnect/accesses_throttled " << k.accesses_throttled << "\n";
  const std::string got = os.str();

  const std::string golden_path =
      std::string(RTHV_MULTICORE_GOLDEN_DIR) + "/golden_mixed_crit.txt";
  if (std::getenv("RTHV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << got;
    GTEST_SKIP() << "golden updated: " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str());
}

}  // namespace
}  // namespace rthv::core
