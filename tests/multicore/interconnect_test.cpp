// Unit tests for the shared-interconnect interference model: epoch-bucketed
// demand visibility, cache-coloring disjointness, MemGuard-style bandwidth
// regulation, the charge formula, and checkpoint/restore.
#include "hw/multicore/interconnect.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/state_io.hpp"
#include "sim/time.hpp"

namespace rthv::hw {
namespace {

using sim::Duration;
using sim::TimePoint;

InterconnectConfig two_core_config() {
  InterconnectConfig cfg;
  cfg.num_cores = 2;
  cfg.num_colors = 16;
  cfg.epoch = Duration::us(100);
  cfg.base_access_ns = 0;
  cfg.conflict_access_ns = 4;
  cfg.half_load_accesses = 2000;
  return cfg;
}

TEST(SharedInterconnectTest, DemandBecomesPressureInTheNextEpochOnly) {
  SharedInterconnect icx(two_core_config());
  const std::uint32_t mask = icx.full_mask();

  icx.register_demand(1, mask, 2000, TimePoint::at_us(10));
  // Same epoch: the burst sees no pressure from demand registered "now".
  EXPECT_EQ(icx.contention_stall(0, mask, 100, TimePoint::at_us(50)),
            Duration::zero());

  // Next epoch: the 2000 accesses are pressure. With P == half_load the
  // conflict term is exactly half its maximum: 4 ns * 100 * 1/2 = 200 ns.
  EXPECT_EQ(icx.contention_stall(0, mask, 100, TimePoint::at_us(150)),
            Duration::ns(200));

  // Two idle epochs later the previous epoch carried no demand.
  EXPECT_EQ(icx.contention_stall(0, mask, 100, TimePoint::at_us(450)),
            Duration::zero());
}

TEST(SharedInterconnectTest, OwnDemandIsNotPressure) {
  SharedInterconnect icx(two_core_config());
  icx.register_demand(0, icx.full_mask(), 100000, TimePoint::at_us(10));
  icx.register_demand(0, 0, 0, TimePoint::at_us(150));  // roll only
  EXPECT_EQ(icx.pressure(0, icx.full_mask()), 0u);
  EXPECT_EQ(icx.contention_stall(0, icx.full_mask(), 100, TimePoint::at_us(150)),
            Duration::zero());
  EXPECT_GT(icx.pressure(1, icx.full_mask()), 0u);
}

TEST(SharedInterconnectTest, DisjointColorMasksSeeNoPressure) {
  SharedInterconnect icx(two_core_config());
  icx.register_demand(1, 0x00FFu, 16000, TimePoint::at_us(10));
  icx.register_demand(1, 0, 0, TimePoint::at_us(150));  // roll only

  EXPECT_EQ(icx.pressure(0, 0xFF00u), 0u);      // disjoint: colored away
  EXPECT_EQ(icx.pressure(0, 0x00FFu), 16000u);  // overlapping: full demand
  EXPECT_EQ(icx.contention_stall(0, 0xFF00u, 100, TimePoint::at_us(160)),
            Duration::zero());
  EXPECT_GT(icx.contention_stall(0, 0x00FFu, 100, TimePoint::at_us(170)),
            Duration::zero());
}

TEST(SharedInterconnectTest, ZeroMaskMeansUncolored) {
  SharedInterconnect icx(two_core_config());
  icx.register_demand(1, 0, 1600, TimePoint::at_us(10));
  icx.register_demand(1, 0, 0, TimePoint::at_us(150));  // roll only
  // Mask 0 normalizes to all colors: the demand spreads over all 16 and is
  // fully visible to any overlapping mask.
  EXPECT_EQ(icx.pressure(0, icx.full_mask()), 1600u);
  EXPECT_EQ(icx.pressure(0, 0x0001u), 100u);  // one color's share
}

TEST(SharedInterconnectTest, BandwidthRegulationClampsPerWindow) {
  InterconnectConfig cfg = two_core_config();
  cfg.budgets = {CoreBandwidthBudget{0, Duration::us(100)},   // core 0 free
                 CoreBandwidthBudget{500, Duration::us(100)}};  // core 1 capped
  SharedInterconnect icx(cfg);

  // 2000 demanded, 500 granted: the hog is throttled at the regulator and
  // only the granted accesses ever become pressure.
  icx.register_demand(1, icx.full_mask(), 2000, TimePoint::at_us(10));
  EXPECT_EQ(icx.counters().accesses_registered, 500u);
  EXPECT_EQ(icx.counters().accesses_throttled, 1500u);
  icx.register_demand(1, icx.full_mask(), 100, TimePoint::at_us(20));
  EXPECT_EQ(icx.counters().accesses_throttled, 1600u);  // window exhausted

  // The replenishment window resets the budget.
  icx.register_demand(1, icx.full_mask(), 300, TimePoint::at_us(110));
  EXPECT_EQ(icx.counters().accesses_registered, 800u);

  icx.register_demand(1, icx.full_mask(), 0, TimePoint::at_us(210));  // roll
  EXPECT_EQ(icx.pressure(0, icx.full_mask()), 300u);
}

TEST(SharedInterconnectTest, ChargeIsMonotoneInPressureAndSaturating) {
  SharedInterconnect icx(two_core_config());
  Duration prev = Duration::zero();
  // Pressure doubling every epoch: the charge grows but never exceeds the
  // conflict ceiling 4 ns * accesses.
  std::uint64_t demand = 500;
  for (int e = 0; e < 12; ++e) {
    const TimePoint t = TimePoint::at_us(100 * e + 10);
    icx.register_demand(1, icx.full_mask(), demand, t);
    const Duration stall =
        icx.contention_stall(0, icx.full_mask(), 1000, t + Duration::us(100));
    EXPECT_GE(stall, prev);
    EXPECT_LE(stall, Duration::ns(4 * 1000));
    prev = stall;
    demand *= 2;
  }
  EXPECT_GT(prev, Duration::ns(3 * 1000));  // deep saturation approaches max
}

TEST(SharedInterconnectTest, RouteDelayIncludesLatencyAndChargesSender) {
  InterconnectConfig cfg = two_core_config();
  cfg.route_latency = Duration::us(1);
  cfg.route_accesses = 8;
  SharedInterconnect icx(cfg);

  EXPECT_EQ(icx.route_delay(0, 1, TimePoint::at_us(10)), Duration::us(1));
  EXPECT_EQ(icx.counters().routes, 1u);
  // The message's burst was registered on the sending core.
  icx.register_demand(0, 0, 0, TimePoint::at_us(150));  // roll only
  EXPECT_EQ(icx.pressure(1, icx.full_mask()), 8u);

  // Under pressure the route pays contention on top of the fixed latency.
  icx.register_demand(1, icx.full_mask(), 200000, TimePoint::at_us(160));
  EXPECT_GT(icx.route_delay(0, 1, TimePoint::at_us(250)), Duration::us(1));
}

TEST(SharedInterconnectTest, SnapshotRestoreRoundTrips) {
  InterconnectConfig cfg = two_core_config();
  cfg.budgets = {CoreBandwidthBudget{}, CoreBandwidthBudget{5000, Duration::us(100)}};
  SharedInterconnect icx(cfg);
  icx.register_demand(0, 0x000Fu, 700, TimePoint::at_us(10));
  icx.register_demand(1, 0x00F0u, 900, TimePoint::at_us(20));
  (void)icx.route_delay(1, 0, TimePoint::at_us(30));

  sim::StateWriter w;
  icx.snapshot_state(w);
  const auto words = w.take();

  // Mutate, then restore: accounting must return to the snapshot exactly.
  icx.register_demand(1, 0, 5000, TimePoint::at_us(340));
  (void)icx.contention_stall(0, 0, 100, TimePoint::at_us(350));

  sim::StateReader r(words);
  icx.restore_state(r);
  EXPECT_EQ(icx.counters().routes, 1u);
  EXPECT_EQ(icx.counters().accesses_registered, 700u + 900u + 8u);
  icx.register_demand(0, 0, 0, TimePoint::at_us(110));  // roll to epoch 1
  EXPECT_EQ(icx.pressure(1, 0x000Fu), 700u);
}

TEST(SharedInterconnectTest, ConstructorValidates) {
  InterconnectConfig cfg = two_core_config();
  cfg.num_cores = 0;
  EXPECT_THROW(SharedInterconnect{cfg}, std::invalid_argument);
  cfg = two_core_config();
  cfg.num_colors = 0;
  EXPECT_THROW(SharedInterconnect{cfg}, std::invalid_argument);
  cfg.num_colors = 33;
  EXPECT_THROW(SharedInterconnect{cfg}, std::invalid_argument);
  cfg = two_core_config();
  cfg.epoch = Duration::zero();
  EXPECT_THROW(SharedInterconnect{cfg}, std::invalid_argument);
  cfg = two_core_config();
  cfg.half_load_accesses = 0;
  EXPECT_THROW(SharedInterconnect{cfg}, std::invalid_argument);
  cfg = two_core_config();
  cfg.budgets = {CoreBandwidthBudget{100, Duration::zero()}};
  EXPECT_THROW(SharedInterconnect{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rthv::hw
