// Golden-trace regression + observer-effect tests.
//
// The committed golden file (tests/obs/golden_trace.txt) pins the exact
// typed-event stream the monitored paper baseline produces for a fixed
// workload. Any change to instrumentation points, event ordering or the
// text renderer shows up as a diff; regenerate deliberately with
//     RTHV_UPDATE_GOLDEN=1 ./build/tests/test_obs
// and review the diff like any other golden update.
//
// The observer-effect tests pin the layer's core guarantee: enabling
// tracing/metrics changes no simulation output, and per-run metrics merged
// in run-index order are bit-identical for any --jobs value.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/hypervisor_system.hpp"
#include "exp/run_result.hpp"
#include "exp/sweep_runner.hpp"
#include "exp/thread_pool.hpp"
#include "obs/exporters.hpp"
#include "workload/generators.hpp"

namespace rthv {
namespace {

using sim::Duration;

core::SystemConfig monitored_baseline() {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = Duration::us(1444);
  return cfg;
}

struct RunOutput {
  std::string summary;       // recorder text (the user-visible result)
  std::string metrics_json;  // metrics snapshot serialization
  std::uint64_t completed = 0;
  std::uint64_t executed_events = 0;
  std::string trace_text;    // empty when tracing was off
};

RunOutput run_baseline(bool tracing, std::uint64_t seed = 2014,
                       std::size_t irqs = 48) {
  core::HypervisorSystem system(monitored_baseline());
  if (tracing) system.enable_tracing();
  workload::ExponentialTraceGenerator gen(Duration::us(1444), seed);
  system.attach_trace(0, gen.generate(irqs));
  RunOutput out;
  out.completed = system.run(Duration::s(10));
  out.executed_events = system.simulator().executed_events();
  std::ostringstream summary;
  system.recorder().write_summary(summary);
  out.summary = summary.str();
  std::ostringstream metrics;
  system.metrics_snapshot().write_json(metrics);
  out.metrics_json = metrics.str();
  if (tracing) {
    const auto meta = system.trace_meta();
    out.trace_text = obs::render_text(system.trace(), &meta);
  }
  return out;
}

std::string golden_path() { return std::string(RTHV_GOLDEN_DIR) + "/golden_trace.txt"; }

TEST(GoldenTraceTest, BaselineTraceMatchesGoldenFile) {
  const auto out = run_baseline(/*tracing=*/true);
  ASSERT_GT(out.trace_text.size(), 1000u) << "trace suspiciously small";

  if (std::getenv("RTHV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(golden_path());
    ASSERT_TRUE(os) << "cannot write " << golden_path();
    os << out.trace_text;
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream is(golden_path());
  ASSERT_TRUE(is) << "missing golden file " << golden_path()
                  << " -- regenerate with RTHV_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << is.rdbuf();
  EXPECT_EQ(out.trace_text, golden.str())
      << "typed trace diverged from the committed golden stream";
}

TEST(GoldenTraceTest, GoldenContainsAllPathClasses) {
  const auto out = run_baseline(/*tracing=*/true);
  // The 48-IRQ monitored run exercises every major instrumentation point.
  for (const char* needle :
       {"start", "slot-switch", "top-enter", "top-exit", "mon-admit", "irq-push",
        "irq-pop", "bh-start", "bh-end", "interpose-enter", "interpose-return",
        "part=", "src="}) {
    EXPECT_NE(out.trace_text.find(needle), std::string::npos)
        << "trace lacks '" << needle << "'";
  }
}

TEST(ObserverEffectTest, TracingChangesNoSimulationOutput) {
  const auto off = run_baseline(/*tracing=*/false);
  const auto on = run_baseline(/*tracing=*/true);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.executed_events, on.executed_events);
  EXPECT_EQ(off.summary, on.summary) << "recorder summary must be byte-identical";
  EXPECT_EQ(off.metrics_json, on.metrics_json)
      << "metrics must not depend on tracing state";
}

TEST(ObserverEffectTest, RepeatedRunsAreBitIdentical) {
  const auto a = run_baseline(/*tracing=*/true);
  const auto b = run_baseline(/*tracing=*/true);
  EXPECT_EQ(a.trace_text, b.trace_text);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

// Merged metrics (and traces) from a sweep are identical for any job count.
exp::RunResult run_sweep(std::size_t jobs) {
  constexpr std::size_t kRuns = 6;
  exp::SweepRunner runner(jobs);
  auto runs = runner.map(kRuns, [](std::size_t i) {
    core::HypervisorSystem system(monitored_baseline());
    system.enable_tracing();
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 2014 + i);
    system.attach_trace(0, gen.generate(200));
    system.run(Duration::s(30));
    return exp::RunResult::capture(system);
  });
  exp::RunResult merged = std::move(runs[0]);
  for (std::size_t i = 1; i < runs.size(); ++i) merged.merge(std::move(runs[i]));
  return merged;
}

TEST(ObserverEffectTest, MetricsMergeIsJobCountIndependent) {
  const auto sequential = run_sweep(1);
  const auto parallel = run_sweep(exp::ThreadPool::hardware_jobs());

  std::ostringstream js, jp;
  sequential.metrics.write_json(js);
  parallel.metrics.write_json(jp);
  EXPECT_EQ(js.str(), jp.str()) << "merged metrics must be bit-identical";

  EXPECT_EQ(obs::render_text(sequential.trace, &sequential.trace_meta),
            obs::render_text(parallel.trace, &parallel.trace_meta))
      << "merged trace stream must be bit-identical";
  EXPECT_EQ(sequential.trace_dropped, parallel.trace_dropped);
  EXPECT_GT(sequential.metrics.counter_value("irq.completed"), 0u);
}

}  // namespace
}  // namespace rthv
