// Round-trip test for the Chrome trace-event export: the JSON must parse,
// every track's events must be time-sorted, and duration events must
// balance (each "E" closes exactly one "B" on its track, none left open).
// A hand-rolled recursive-descent parser keeps the test dependency-free;
// it covers the JSON subset the exporter emits (objects, arrays, strings
// with backslash escapes, numbers, booleans/null are not produced).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "core/hypervisor_system.hpp"
#include "obs/exporters.hpp"
#include "workload/generators.hpp"

namespace rthv {
namespace {

using sim::Duration;

// --- minimal JSON parser ----------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::monostate, double, std::string, JsonObject, JsonArray> v;

  [[nodiscard]] const JsonObject& obj() const { return std::get<JsonObject>(v); }
  [[nodiscard]] const JsonArray& arr() const { return std::get<JsonArray>(v); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
  [[nodiscard]] double num() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      default: return JsonValue{number()};
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject out;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      std::string key = string();
      expect(':');
      out.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(out)};
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray out;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      out.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(out)};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: throw std::runtime_error("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- fixture ----------------------------------------------------------------

std::string export_monitored_run() {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = Duration::us(1444);
  core::HypervisorSystem system(cfg);
  system.enable_tracing();
  workload::ExponentialTraceGenerator gen(Duration::us(1444), 2014);
  system.attach_trace(0, gen.generate(120));
  system.run(Duration::s(10));
  std::ostringstream os;
  obs::write_chrome_trace(os, system.trace(), system.trace_meta(),
                          system.trace_dropped());
  return os.str();
}

class PerfettoRoundtripTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    json_ = new std::string(export_monitored_run());
    root_ = new JsonValue(JsonParser(*json_).parse());
  }
  static void TearDownTestSuite() {
    delete root_;
    delete json_;
    root_ = nullptr;
    json_ = nullptr;
  }

  static std::string* json_;
  static JsonValue* root_;
};

std::string* PerfettoRoundtripTest::json_ = nullptr;
JsonValue* PerfettoRoundtripTest::root_ = nullptr;

TEST_F(PerfettoRoundtripTest, ParsesAndHasTopLevelShape) {
  const auto& top = root_->obj();
  ASSERT_TRUE(top.contains("traceEvents"));
  ASSERT_TRUE(top.contains("otherData"));
  EXPECT_EQ(top.at("displayTimeUnit").str(), "ms");
  EXPECT_TRUE(top.at("otherData").obj().contains("dropped_events"));
  EXPECT_GT(top.at("traceEvents").arr().size(), 100u);
}

TEST_F(PerfettoRoundtripTest, HasProcessAndThreadMetadata) {
  bool process_named = false;
  std::map<double, std::string> thread_names;
  for (const auto& ev : root_->obj().at("traceEvents").arr()) {
    const auto& e = ev.obj();
    if (e.at("ph").str() != "M") continue;
    if (e.at("name").str() == "process_name") {
      process_named = true;
      EXPECT_EQ(e.at("args").obj().at("name").str(), "rthv");
    } else if (e.at("name").str() == "thread_name") {
      thread_names[e.at("tid").num()] = e.at("args").obj().at("name").str();
    }
  }
  EXPECT_TRUE(process_named);
  EXPECT_EQ(thread_names[1000], "hypervisor");
  EXPECT_EQ(thread_names[1001], "monitor");
  // The baseline has three partitions on tids 1..3.
  EXPECT_EQ(thread_names.count(1), 1u);
  EXPECT_EQ(thread_names.count(2), 1u);
  EXPECT_EQ(thread_names.count(3), 1u);
}

TEST_F(PerfettoRoundtripTest, EventsTimeSortedPerTrackAndSpansBalance) {
  std::map<double, double> last_ts;
  std::map<double, std::int64_t> open_spans;
  for (const auto& ev : root_->obj().at("traceEvents").arr()) {
    const auto& e = ev.obj();
    const std::string& ph = e.at("ph").str();
    if (ph == "M") continue;
    const double tid = e.at("tid").num();
    const double ts = e.at("ts").num();
    if (last_ts.contains(tid)) {
      EXPECT_GE(ts, last_ts[tid]) << "track " << tid << " not time-sorted";
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      ++open_spans[tid];
      EXPECT_FALSE(e.at("name").str().empty());
    } else if (ph == "E") {
      --open_spans[tid];
      EXPECT_GE(open_spans[tid], 0) << "E without matching B on track " << tid;
    } else {
      EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
    }
  }
  for (const auto& [tid, open] : open_spans) {
    EXPECT_EQ(open, 0) << "track " << tid << " ends with unbalanced spans";
  }
}

TEST_F(PerfettoRoundtripTest, MonitorTrackCarriesDecisions) {
  std::size_t admits = 0;
  std::size_t instants_on_monitor = 0;
  for (const auto& ev : root_->obj().at("traceEvents").arr()) {
    const auto& e = ev.obj();
    if (e.at("ph").str() != "i") continue;
    if (e.at("tid").num() == 1001) {
      ++instants_on_monitor;
      const std::string& name = e.at("name").str();
      EXPECT_TRUE(name == "mon-admit" || name == "mon-deny" ||
                  name == "interpose-deny" || name == "interpose-start")
          << "unexpected monitor-track event " << name;
      if (name == "mon-admit") {
        ++admits;
        EXPECT_TRUE(e.at("args").obj().contains("seq"));
      }
    }
  }
  EXPECT_GT(instants_on_monitor, 0u);
  EXPECT_GT(admits, 0u) << "monitored baseline should admit interpositions";
}

TEST_F(PerfettoRoundtripTest, EmptyTraceStillParses) {
  std::ostringstream os;
  obs::write_chrome_trace(os, {}, obs::TraceMeta{}, 0);
  const std::string text = os.str();
  const JsonValue root = JsonParser(text).parse();
  // Only metadata events (process + hypervisor/monitor tracks).
  for (const auto& ev : root.obj().at("traceEvents").arr()) {
    EXPECT_EQ(ev.obj().at("ph").str(), "M");
  }
}

}  // namespace
}  // namespace rthv
