// Property tests for the observability layer's determinism contracts:
//  * TraceRing wraparound keeps exactly the newest `capacity` events and
//    accounts every overwritten one (dropped == emitted - size);
//  * RTHV_TRACE does not evaluate its arguments while disabled (the
//    zero-observer-effect guarantee rests on this);
//  * merging per-shard MetricsSnapshots in shard order is bit-identical to
//    observing the same sample stream in one registry, for any shard split
//    (the SweepRunner jobs-independence contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"

namespace rthv::obs {
namespace {

TEST(TraceRingTest, DisabledRingIsFreeAndEmpty) {
  TraceRing ring(8);
  EXPECT_FALSE(ring.enabled());
  ring.emit(1, TracePoint::kIrqPush, TraceCategory::kIrq);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, MacroSkipsArgumentEvaluationWhileDisabled) {
  TraceRing ring(8);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return std::int64_t{42};
  };
  RTHV_TRACE(ring, expensive(), TracePoint::kIrqPush, TraceCategory::kIrq);
  EXPECT_EQ(evaluations, 0) << "disabled tracing must not evaluate arguments";
  ring.set_enabled(true);
  RTHV_TRACE(ring, expensive(), TracePoint::kIrqPush, TraceCategory::kIrq);
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(ring.snapshot().at(0).time_ns, 42);
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDrops) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::int64_t kEmitted = 20;
  TraceRing ring(kCapacity);
  ring.set_enabled(true);
  for (std::int64_t t = 0; t < kEmitted; ++t) {
    ring.emit(t, TracePoint::kIrqPush, TraceCategory::kIrq, 0, 0,
              static_cast<std::uint64_t>(t));
  }
  EXPECT_EQ(ring.size(), kCapacity);
  EXPECT_EQ(ring.emitted(), static_cast<std::uint64_t>(kEmitted));
  EXPECT_EQ(ring.dropped(), ring.emitted() - ring.size());
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(events[i].time_ns, kEmitted - static_cast<std::int64_t>(kCapacity - i))
        << "snapshot must hold the newest events, oldest first";
  }
  EXPECT_EQ(ring.category_count(TraceCategory::kIrq),
            static_cast<std::uint64_t>(kEmitted))
      << "category counters survive wraparound";
}

TEST(TraceRingTest, DropInvariantHoldsAtEveryStep) {
  std::mt19937_64 rng(7);
  for (const std::size_t capacity : {1u, 2u, 5u, 16u}) {
    TraceRing ring(capacity);
    ring.set_enabled(true);
    const std::uint64_t n = 3 * capacity + rng() % 10;
    for (std::uint64_t t = 0; t < n; ++t) {
      ring.emit(static_cast<std::int64_t>(t), TracePoint::kLegacy,
                TraceCategory::kOther);
      ASSERT_EQ(ring.dropped(), ring.emitted() - ring.size());
    }
  }
}

TEST(TraceRingTest, ClearKeepsEnabledAndCapacity) {
  TraceRing ring(4);
  ring.set_enabled(true);
  ring.emit(1, TracePoint::kLegacy, TraceCategory::kOther);
  ring.clear();
  EXPECT_TRUE(ring.enabled());
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_EQ(ring.category_count(TraceCategory::kOther), 0u);
}

// --- metrics ----------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndO1) {
  MetricsRegistry reg;
  const auto c1 = reg.counter("a");
  const auto c2 = reg.counter("a");
  EXPECT_EQ(c1.index, c2.index) << "re-registration returns the same handle";
  reg.add(c1, 3);
  reg.add(c2);
  EXPECT_EQ(reg.value(c1), 4u);

  const auto h1 = reg.histogram("h", 0, 100, 10);
  const auto h2 = reg.histogram("h", 0, 100, 10);
  EXPECT_EQ(h1.index, h2.index);
  EXPECT_THROW((void)reg.histogram("h", 0, 200, 10), std::invalid_argument)
      << "rebinning an existing histogram must throw";
}

TEST(MetricsSnapshotTest, HistogramObserveBinsCorrectly) {
  MetricsRegistry reg;
  const auto h = reg.histogram("lat", 100, 50, 4);  // [100,150) ... [250,300)
  reg.observe(h, 99);    // underflow
  reg.observe(h, 100);   // bucket 0
  reg.observe(h, 149);   // bucket 0
  reg.observe(h, 250);   // bucket 3
  reg.observe(h, 300);   // overflow
  reg.observe(h, 5000);  // overflow
  const auto snap = reg.snapshot();
  const auto* hist = snap.find_histogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->underflow, 1u);
  EXPECT_EQ(hist->overflow, 2u);
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[1], 0u);
  EXPECT_EQ(hist->buckets[3], 1u);
  EXPECT_EQ(hist->count, 6u);
  EXPECT_EQ(hist->min_ns, 99);
  EXPECT_EQ(hist->max_ns, 5000);
  EXPECT_EQ(hist->sum_ns, 99 + 100 + 149 + 250 + 300 + 5000);
}

TEST(MetricsSnapshotTest, MergeRejectsBinningMismatch) {
  MetricsRegistry a;
  MetricsRegistry b;
  (void)a.histogram("h", 0, 100, 10);
  (void)b.histogram("h", 0, 100, 11);
  auto snap = a.snapshot();
  EXPECT_THROW(snap.merge(b.snapshot()), std::invalid_argument);
}

TEST(MetricsSnapshotTest, GaugeMergeIsLastWriteWins) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.set(a.gauge("g"), 1);
  b.set(b.gauge("g"), 2);
  auto snap = a.snapshot();
  snap.merge(b.snapshot());
  const auto* g = snap.find_gauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 2);
}

std::string to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  snap.write_json(os);
  return os.str();
}

// Observe `samples` into a fresh registry (one counter + one histogram).
MetricsSnapshot observe_all(const std::vector<std::int64_t>& samples) {
  MetricsRegistry reg;
  const auto c = reg.counter("events");
  const auto h = reg.histogram("latency", 0, 1000, 32);
  for (const std::int64_t s : samples) {
    reg.add(c);
    reg.observe(h, s);
  }
  return reg.snapshot();
}

TEST(MetricsSnapshotTest, ShardedMergeEqualsSingleShardForAnySplit) {
  std::mt19937_64 rng(2014);
  std::uniform_int_distribution<std::int64_t> sample(-500, 40'000);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng() % 200;
    std::vector<std::int64_t> samples(n);
    for (auto& s : samples) s = sample(rng);
    const std::string expected = to_json(observe_all(samples));

    // Split the stream at random boundaries into 1..8 ordered shards.
    const std::size_t shards = 1 + rng() % 8;
    std::vector<std::size_t> cuts{0, n};
    for (std::size_t i = 1; i < shards; ++i) cuts.push_back(rng() % (n + 1));
    std::sort(cuts.begin(), cuts.end());

    MetricsSnapshot merged;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const std::vector<std::int64_t> shard(
          samples.begin() + static_cast<std::ptrdiff_t>(cuts[i]),
          samples.begin() + static_cast<std::ptrdiff_t>(cuts[i + 1]));
      merged.merge(observe_all(shard));
    }
    ASSERT_EQ(to_json(merged), expected)
        << "trial " << trial << ": merged shards must serialize bit-identically";
  }
}

TEST(MetricsSnapshotTest, TextAndJsonDumpsAreDeterministic) {
  MetricsRegistry reg;
  reg.add(reg.counter("z.last"), 1);
  reg.add(reg.counter("a.first"), 2);
  reg.set(reg.gauge("now"), -5);
  reg.observe(reg.histogram("h", 0, 10, 2), 3);
  const auto snap = reg.snapshot();
  const std::string json = to_json(snap);
  EXPECT_EQ(json, to_json(snap));
  EXPECT_NE(json.find("\"schema\": \"rthv-metrics-v1\""), std::string::npos);
  // Insertion order, not alphabetical: z.last registered first.
  EXPECT_LT(json.find("z.last"), json.find("a.first"));
  std::ostringstream text;
  snap.write_text(text);
  EXPECT_NE(text.str().find("a.first 2"), std::string::npos);
}

}  // namespace
}  // namespace rthv::obs
