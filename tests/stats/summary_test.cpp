#include "stats/summary.hpp"

#include <gtest/gtest.h>

namespace rthv::stats {
namespace {

using sim::Duration;

TEST(SummaryTest, BasicMoments) {
  Summary s;
  s.add(Duration::us(10));
  s.add(Duration::us(20));
  s.add(Duration::us(30));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.mean(), Duration::us(20));
  EXPECT_EQ(s.min(), Duration::us(10));
  EXPECT_EQ(s.max(), Duration::us(30));
}

TEST(SummaryTest, MeanIsExactForNonDivisibleSums) {
  Summary s;
  s.add(Duration::ns(1));
  s.add(Duration::ns(2));
  EXPECT_EQ(s.mean(), Duration::ns(1));  // floor(3/2)
}

TEST(SummaryTest, MeanHandlesHugeSums) {
  Summary s;
  // 1000 samples of ~1e16 ns would overflow a naive 64-bit sum times 1000.
  for (int i = 0; i < 1000; ++i) s.add(Duration::s(10'000'000));
  EXPECT_EQ(s.mean(), Duration::s(10'000'000));
}

TEST(SummaryTest, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(Duration::us(i));
  EXPECT_EQ(s.percentile(50), Duration::us(50));
  EXPECT_EQ(s.percentile(99), Duration::us(99));
  EXPECT_EQ(s.percentile(100), Duration::us(100));
  EXPECT_EQ(s.percentile(0), Duration::us(1));
  EXPECT_EQ(s.median(), Duration::us(50));
}

TEST(SummaryTest, PercentileAfterLaterAdds) {
  Summary s;
  s.add(Duration::us(10));
  EXPECT_EQ(s.median(), Duration::us(10));
  s.add(Duration::us(2));
  s.add(Duration::us(4));
  EXPECT_EQ(s.median(), Duration::us(4));  // sorted cache must refresh
}

TEST(SummaryTest, StddevOfConstantIsZero) {
  Summary s;
  for (int i = 0; i < 10; ++i) s.add(Duration::us(7));
  EXPECT_EQ(s.stddev(), Duration::zero());
}

TEST(SummaryTest, StddevKnownValue) {
  Summary s;
  s.add(Duration::us(10));
  s.add(Duration::us(20));
  // Population stddev of {10, 20} is 5.
  EXPECT_EQ(s.stddev(), Duration::us(5));
}

TEST(SlidingAverageTest, GrowsUntilWindowFull) {
  SlidingAverage avg(3);
  EXPECT_EQ(avg.add(Duration::us(10)), Duration::us(10));
  EXPECT_EQ(avg.add(Duration::us(20)), Duration::us(15));
  EXPECT_EQ(avg.add(Duration::us(30)), Duration::us(20));
  EXPECT_EQ(avg.filled(), 3u);
}

TEST(SlidingAverageTest, SlidesAfterWindowFull) {
  SlidingAverage avg(2);
  avg.add(Duration::us(10));
  avg.add(Duration::us(20));
  // Window now {20, 30}.
  EXPECT_EQ(avg.add(Duration::us(30)), Duration::us(25));
  // Window now {30, 100}.
  EXPECT_EQ(avg.add(Duration::us(100)), Duration::us(65));
}

TEST(SlidingAverageTest, WindowOfOneTracksLastSample) {
  SlidingAverage avg(1);
  avg.add(Duration::us(5));
  EXPECT_EQ(avg.add(Duration::us(9)), Duration::us(9));
  EXPECT_EQ(avg.current(), Duration::us(9));
}

}  // namespace
}  // namespace rthv::stats
