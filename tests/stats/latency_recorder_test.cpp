#include "stats/latency_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rthv::stats {
namespace {

using sim::Duration;

TEST(LatencyRecorderTest, RecordsPerClassAndOverall) {
  LatencyRecorder r;
  r.record(HandlingClass::kDirect, Duration::us(40));
  r.record(HandlingClass::kDirect, Duration::us(50));
  r.record(HandlingClass::kDelayed, Duration::us(8000));
  EXPECT_EQ(r.count(HandlingClass::kDirect), 2u);
  EXPECT_EQ(r.count(HandlingClass::kDelayed), 1u);
  EXPECT_EQ(r.count(HandlingClass::kInterposed), 0u);
  EXPECT_EQ(r.total(), 3u);
  EXPECT_EQ(r.of(HandlingClass::kDirect).mean(), Duration::us(45));
  EXPECT_EQ(r.all().max(), Duration::us(8000));
}

TEST(LatencyRecorderTest, Fractions) {
  LatencyRecorder r;
  r.record(HandlingClass::kDirect, Duration::us(1));
  r.record(HandlingClass::kInterposed, Duration::us(1));
  r.record(HandlingClass::kInterposed, Duration::us(1));
  r.record(HandlingClass::kDelayed, Duration::us(1));
  EXPECT_DOUBLE_EQ(r.fraction(HandlingClass::kDirect), 0.25);
  EXPECT_DOUBLE_EQ(r.fraction(HandlingClass::kInterposed), 0.5);
}

TEST(LatencyRecorderTest, FractionOfEmptyRecorderIsZero) {
  LatencyRecorder r;
  EXPECT_DOUBLE_EQ(r.fraction(HandlingClass::kDirect), 0.0);
}

TEST(LatencyRecorderTest, SummaryLineMentionsAllClasses) {
  LatencyRecorder r;
  r.record(HandlingClass::kInterposed, Duration::us(150));
  std::ostringstream os;
  r.write_summary(os);
  const auto text = os.str();
  EXPECT_NE(text.find("direct"), std::string::npos);
  EXPECT_NE(text.find("interposed"), std::string::npos);
  EXPECT_NE(text.find("delayed"), std::string::npos);
  EXPECT_NE(text.find("150"), std::string::npos);
}

TEST(LatencyRecorderTest, EmptySummaryDoesNotCrash) {
  LatencyRecorder r;
  std::ostringstream os;
  r.write_summary(os);
  EXPECT_NE(os.str().find("no IRQs"), std::string::npos);
}

TEST(HandlingClassTest, Names) {
  EXPECT_EQ(to_string(HandlingClass::kDirect), "direct");
  EXPECT_EQ(to_string(HandlingClass::kInterposed), "interposed");
  EXPECT_EQ(to_string(HandlingClass::kDelayed), "delayed");
}

}  // namespace
}  // namespace rthv::stats
