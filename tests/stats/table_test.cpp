#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rthv::stats {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.write(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  Table t({"h", "x"});
  t.add_row({"longcell", "1"});
  std::ostringstream os;
  t.write(os);
  std::istringstream is(os.str());
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  // "x" starts at the same column in header and data row.
  EXPECT_EQ(header.find('x'), row.find('1'));
}

TEST(TableTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2500.0, 0), "2500");
  EXPECT_EQ(Table::num(0.5), "0.5");
}

TEST(TableTest, EmptyTableRendersHeaderOnly) {
  Table t({"only"});
  std::ostringstream os;
  t.write(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace rthv::stats
