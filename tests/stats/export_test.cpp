#include "stats/export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace rthv::stats {
namespace {

using sim::Duration;

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(ExportTest, WriteCsvFile) {
  const std::string path = ::testing::TempDir() + "/export_test.csv";
  write_csv_file(path, "a,b", {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(slurp(path), "a,b\n1,2\n3,4\n");
}

TEST(ExportTest, WriteCsvFileFailsOnBadPath) {
  EXPECT_THROW(write_csv_file("/nonexistent/dir/x.csv", "a", {}), std::runtime_error);
}

TEST(ExportTest, HistogramCsvRoundTrip) {
  Histogram h(Duration::zero(), Duration::us(20), Duration::us(10));
  h.add(Duration::us(5));
  const std::string path = ::testing::TempDir() + "/export_hist.csv";
  write_histogram_csv(path, h);
  EXPECT_EQ(slurp(path), "bin_lo_us,bin_hi_us,count\n0,10,1\n10,20,0\n");
}

TEST(ExportTest, HistogramGnuplotScriptReferencesCsv) {
  const std::string dir = ::testing::TempDir();
  write_histogram_gnuplot(dir + "/fig.gp", dir + "/fig.csv", "My Title");
  const auto script = slurp(dir + "/fig.gp");
  EXPECT_NE(script.find("My Title"), std::string::npos);
  EXPECT_NE(script.find("fig.csv"), std::string::npos);
  EXPECT_NE(script.find("logscale"), std::string::npos);
  EXPECT_NE(script.find("with boxes"), std::string::npos);
}

TEST(ExportTest, SeriesGnuplotPlotsAllColumns) {
  const std::string dir = ::testing::TempDir();
  write_series_gnuplot(dir + "/series.gp", dir + "/series.csv", "Curves", 4);
  const auto script = slurp(dir + "/series.gp");
  // Columns 2..5 for 4 series.
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:5"), std::string::npos);
  EXPECT_EQ(script.find("using 1:6"), std::string::npos);
}

}  // namespace
}  // namespace rthv::stats
