#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rthv::stats {
namespace {

using sim::Duration;

TEST(HistogramTest, BinCountFromRangeAndWidth) {
  Histogram h(Duration::zero(), Duration::us(100), Duration::us(10));
  EXPECT_EQ(h.num_bins(), 10u);
  Histogram uneven(Duration::zero(), Duration::us(95), Duration::us(10));
  EXPECT_EQ(uneven.num_bins(), 10u);  // rounded up to cover the range
}

TEST(HistogramTest, SamplesLandInCorrectBins) {
  Histogram h(Duration::zero(), Duration::us(100), Duration::us(10));
  h.add(Duration::us(0));
  h.add(Duration::us(9));
  h.add(Duration::us(10));
  h.add(Duration::us(99));
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderflowAndOverflow) {
  Histogram h(Duration::us(10), Duration::us(20), Duration::us(10));
  h.add(Duration::us(5));
  h.add(Duration::us(25));
  h.add(Duration::us(15));
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BinBoundaries) {
  Histogram h(Duration::us(100), Duration::us(400), Duration::us(100));
  EXPECT_EQ(h.bin_lower(0), Duration::us(100));
  EXPECT_EQ(h.bin_upper(0), Duration::us(200));
  EXPECT_EQ(h.bin_lower(2), Duration::us(300));
}

TEST(HistogramTest, CsvOutput) {
  Histogram h(Duration::zero(), Duration::us(20), Duration::us(10));
  h.add(Duration::us(5));
  std::ostringstream os;
  h.write_csv(os);
  EXPECT_EQ(os.str(), "bin_lo_us,bin_hi_us,count\n0,10,1\n10,20,0\n");
}

TEST(HistogramTest, AsciiSkipsEmptyBinsAndShowsCounts) {
  Histogram h(Duration::zero(), Duration::us(30), Duration::us(10));
  for (int i = 0; i < 5; ++i) h.add(Duration::us(5));
  h.add(Duration::us(25));
  std::ostringstream os;
  h.write_ascii(os);
  const auto text = os.str();
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_NE(text.find(" 5"), std::string::npos);
  EXPECT_EQ(text.find("[10, 20)"), std::string::npos);  // empty bin skipped
}

TEST(HistogramTest, AsciiEmptyHistogram) {
  Histogram h(Duration::zero(), Duration::us(10), Duration::us(10));
  std::ostringstream os;
  h.write_ascii(os);
  EXPECT_EQ(os.str(), "(empty histogram)\n");
}

}  // namespace
}  // namespace rthv::stats
