// Hypervisor behaviour tests: TDMA switching, the three IRQ handling paths
// of Figs. 3/4, and partition work dispatching.
//
// Test platform: 200 MHz, context switch = 1000 instr + 1000 cycles = 10 us,
// monitor = 200 instr = 1 us, sched manipulation = 1000 instr = 5 us, TDMA
// tick = 200 instr = 1 us. Two partitions with 1000 us slots. IRQ source:
// C_TH = 5 us, C_BH = 20 us.
#include "hv/hypervisor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hw/platform.hpp"
#include "sim/simulator.hpp"

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

hw::PlatformConfig test_platform_config() {
  hw::PlatformConfig cfg;
  cfg.ctx_invalidate_instructions = 1000;
  cfg.ctx_writeback_cycles = 1000;
  return cfg;
}

OverheadConfig test_overheads() {
  OverheadConfig cfg;
  cfg.monitor_instructions = 200;          // 1 us
  cfg.sched_manipulation_instructions = 1000;  // 5 us
  cfg.tdma_tick_instructions = 200;        // 1 us
  return cfg;
}

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() : platform_(sim_, test_platform_config()), hv_(platform_, test_overheads()) {
    p0_ = hv_.add_partition("p0");
    p1_ = hv_.add_partition("p1");
    hv_.set_schedule({{p0_, Duration::us(1000)}, {p1_, Duration::us(1000)}});
    hv_.set_completion_hook([this](const CompletedIrq& rec) { completions_.push_back(rec); });
  }

  IrqSourceId add_source(PartitionId subscriber, hw::IrqLine line,
                         Duration c_top = Duration::us(5),
                         Duration c_bottom = Duration::us(20)) {
    IrqSourceConfig cfg;
    cfg.name = "src" + std::to_string(line);
    cfg.line = line;
    cfg.subscriber = subscriber;
    cfg.c_top = c_top;
    cfg.c_bottom = c_bottom;
    const auto id = hv_.add_irq_source(cfg);
    timers_.push_back(&platform_.add_timer(line));
    return id;
  }

  void raise_at(std::size_t timer_index, TimePoint t) {
    sim_.schedule_at(t, [this, timer_index] {
      timers_[timer_index]->program(Duration::zero());
    });
  }

  sim::Simulator sim_;
  hw::Platform platform_;
  Hypervisor hv_;
  PartitionId p0_ = 0, p1_ = 0;
  std::vector<hw::HwTimer*> timers_;
  std::vector<CompletedIrq> completions_;
};

// An out-of-range IRQ line must be rejected at configuration time even in
// release builds: config.line indexes the line->source table directly.
TEST_F(HypervisorTest, AddIrqSourceRejectsOutOfRangeLine) {
  IrqSourceConfig cfg;
  cfg.name = "bogus";
  cfg.line = platform_.intc().num_lines();  // one past the last valid line
  cfg.subscriber = p0_;
  cfg.c_top = Duration::us(5);
  cfg.c_bottom = Duration::us(20);
  EXPECT_THROW(hv_.add_irq_source(cfg), std::out_of_range);
}

TEST_F(HypervisorTest, StartEntersFirstSlot) {
  hv_.start();
  EXPECT_EQ(hv_.current_partition(), p0_);
  EXPECT_EQ(hv_.slot_owner(), p0_);
  EXPECT_FALSE(hv_.in_hv_context());
}

TEST_F(HypervisorTest, TdmaSwitchesOnTheGrid) {
  hv_.start();
  sim_.run_until(TimePoint::at_us(999));
  EXPECT_EQ(hv_.current_partition(), p0_);
  // Boundary at 1000us; tick (1us) + context switch (10us) complete at 1011.
  sim_.run_until(TimePoint::at_us(1012));
  EXPECT_EQ(hv_.current_partition(), p1_);
  EXPECT_EQ(hv_.slot_owner(), p1_);
  sim_.run_until(TimePoint::at_us(2012));
  EXPECT_EQ(hv_.current_partition(), p0_);
  EXPECT_EQ(hv_.context_switches().tdma, 2u);
}

TEST_F(HypervisorTest, ManyCyclesKeepGridAlignment) {
  hv_.start();
  sim_.run_until(TimePoint::at_us(20 * 1000 + 500));
  // At t = 20500 we are inside slot 21 (owner alternates, slot 20 -> p0).
  EXPECT_EQ(hv_.current_partition(), p0_);
  EXPECT_EQ(hv_.context_switches().tdma, 20u);
  EXPECT_EQ(hv_.scheduler().cycles_completed(), 10u);
}

TEST_F(HypervisorTest, DirectIrqHandledImmediately) {
  add_source(p0_, 1);
  hv_.start();
  raise_at(0, TimePoint::at_us(100));
  sim_.run_until(TimePoint::at_us(500));
  ASSERT_EQ(completions_.size(), 1u);
  const auto& rec = completions_[0];
  EXPECT_EQ(rec.handling, stats::HandlingClass::kDirect);
  // Latency = C_TH + C_BH (no monitor on the original path).
  EXPECT_EQ(rec.latency(), Duration::us(25));
  EXPECT_EQ(rec.th_start, TimePoint::at_us(100));
  EXPECT_EQ(rec.bh_end, TimePoint::at_us(125));
  EXPECT_EQ(hv_.irq_stats().direct, 1u);
}

TEST_F(HypervisorTest, DelayedIrqWaitsForSubscriberSlot) {
  add_source(p0_, 1);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));  // p1's slot
  sim_.run_until(TimePoint::at_us(2500));
  ASSERT_EQ(completions_.size(), 1u);
  const auto& rec = completions_[0];
  EXPECT_EQ(rec.handling, stats::HandlingClass::kDelayed);
  // Slot start 2000 + tick 1 + ctx 10 + BH 20 = completion at 2031.
  EXPECT_EQ(rec.bh_end, TimePoint::at_us(2031));
  EXPECT_EQ(rec.latency(), Duration::us(931));
}

TEST_F(HypervisorTest, OriginalModeNeverInterposesEvenWithMonitor) {
  const auto sid = add_source(p0_, 1);
  hv_.set_monitor(sid, std::make_unique<mon::AlwaysAdmitMonitor>());
  hv_.set_top_handler_mode(TopHandlerMode::kOriginal);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));
  sim_.run_until(TimePoint::at_us(2500));
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kDelayed);
  EXPECT_EQ(hv_.irq_stats().interpose_started, 0u);
  EXPECT_EQ(hv_.irq_stats().monitor_checked, 0u);
}

TEST_F(HypervisorTest, InterposedIrqRunsInForeignSlot) {
  const auto sid = add_source(p0_, 1);
  hv_.set_monitor(sid, std::make_unique<mon::AlwaysAdmitMonitor>());
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));  // p1's slot
  sim_.run_until(TimePoint::at_us(1500));
  ASSERT_EQ(completions_.size(), 1u);
  const auto& rec = completions_[0];
  EXPECT_EQ(rec.handling, stats::HandlingClass::kInterposed);
  // Latency = C_TH(5) + C_Mon(1) + C_sched(5) + C_ctx(10) + C_BH(20) = 41 us.
  EXPECT_EQ(rec.latency(), Duration::us(41));
  EXPECT_EQ(rec.bh_end, TimePoint::at_us(1141));
  EXPECT_EQ(hv_.irq_stats().interpose_started, 1u);
  EXPECT_EQ(hv_.context_switches().interpose_enter, 1u);
  EXPECT_EQ(hv_.context_switches().interpose_return, 1u);
}

TEST_F(HypervisorTest, InterposeReturnsToInterruptedPartition) {
  const auto sid = add_source(p0_, 1);
  hv_.set_monitor(sid, std::make_unique<mon::AlwaysAdmitMonitor>());
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));
  // BH ends 1141, switch-back ends 1151.
  sim_.run_until(TimePoint::at_us(1152));
  EXPECT_EQ(hv_.current_partition(), p1_);
  EXPECT_FALSE(hv_.interpose_active());
}

TEST_F(HypervisorTest, MonitorDenialFallsBackToDelayed) {
  const auto sid = add_source(p0_, 1);
  // d_min so large that the second activation is denied.
  hv_.set_monitor(sid, std::make_unique<mon::DeltaMinMonitor>(Duration::us(100000)));
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));  // first: admitted, interposed
  raise_at(0, TimePoint::at_us(1300));  // second: denied, delayed
  sim_.run_until(TimePoint::at_us(2500));
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kInterposed);
  EXPECT_EQ(completions_[1].handling, stats::HandlingClass::kDelayed);
  EXPECT_EQ(hv_.irq_stats().denied_by_monitor, 1u);
}

TEST_F(HypervisorTest, DirectPathSkipsMonitorCost) {
  const auto sid = add_source(p0_, 1);
  hv_.set_monitor(sid, std::make_unique<mon::AlwaysAdmitMonitor>());
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  raise_at(0, TimePoint::at_us(100));  // own slot
  sim_.run_until(TimePoint::at_us(500));
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kDirect);
  // No C_Mon on the direct path: latency stays C_TH + C_BH.
  EXPECT_EQ(completions_[0].latency(), Duration::us(25));
  EXPECT_EQ(hv_.irq_stats().monitor_checked, 0u);
  // But the monitor still observed the activation (Algorithm 1 records all).
  EXPECT_EQ(hv_.monitor(sid)->observed(), 1u);
}

TEST_F(HypervisorTest, FifoOrderAcrossManyDelayedEvents) {
  add_source(p0_, 1);
  hv_.start();
  for (int i = 0; i < 5; ++i) {
    raise_at(0, TimePoint::at_us(1100 + i * 50));
  }
  sim_.run_until(TimePoint::at_us(3000));
  ASSERT_EQ(completions_.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(completions_[i].seq, i);
    if (i > 0) {
      EXPECT_GE(completions_[i].bh_end, completions_[i - 1].bh_end);
    }
  }
}

TEST(HypervisorQueueTest, QueueOverflowDropsEvents) {
  sim::Simulator sim;
  hw::Platform platform(sim, test_platform_config());
  Hypervisor hv(platform, test_overheads());
  const auto p0 = hv.add_partition("p0", /*irq_queue_capacity=*/2);
  const auto p1 = hv.add_partition("p1");
  hv.set_schedule({{p0, Duration::us(1000)}, {p1, Duration::us(1000)}});
  IrqSourceConfig cfg;
  cfg.name = "src";
  cfg.line = 1;
  cfg.subscriber = p0;
  cfg.c_top = Duration::us(5);
  cfg.c_bottom = Duration::us(20);
  hv.add_irq_source(cfg);
  auto& timer = platform.add_timer(1);
  std::uint64_t completed = 0;
  hv.set_completion_hook([&](const CompletedIrq&) { ++completed; });
  hv.start();
  // Four events during p1's slot; queue capacity 2 -> two dropped.
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(TimePoint::at_us(1100 + i * 50),
                    [&timer] { timer.program(Duration::zero()); });
  }
  sim.run_until(TimePoint::at_us(3000));
  EXPECT_EQ(completed, 2u);
  EXPECT_EQ(hv.partition(p0).irq_queue().drops(), 2u);
}

TEST_F(HypervisorTest, TopHandlersOfQueuedIrqsDoNotReorderSources) {
  // Two sources for the same partition; events interleave but each source's
  // events complete in its own seq order.
  add_source(p0_, 1);
  add_source(p0_, 2);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));
  raise_at(1, TimePoint::at_us(1150));
  raise_at(0, TimePoint::at_us(1200));
  sim_.run_until(TimePoint::at_us(3000));
  ASSERT_EQ(completions_.size(), 3u);
  // Global FIFO: completion order matches arrival order.
  EXPECT_EQ(completions_[0].source, 0u);
  EXPECT_EQ(completions_[1].source, 1u);
  EXPECT_EQ(completions_[2].source, 0u);
}

TEST_F(HypervisorTest, IrqDuringHvSequenceIsLatchedNotLost) {
  // Two sources raising within each other's top-handler windows.
  add_source(p0_, 1);
  add_source(p0_, 2);
  hv_.start();
  raise_at(0, TimePoint::at_us(100));
  raise_at(1, TimePoint::at_us(102));  // inside source 0's top handler
  sim_.run_until(TimePoint::at_us(500));
  EXPECT_EQ(completions_.size(), 2u);
  EXPECT_EQ(platform_.intc().lost_raises(), 0u);
}

TEST_F(HypervisorTest, GuestWorkRunsAndIsPreemptedBySlotEnd) {
  struct CountingClient : PartitionClient {
    std::uint64_t completed = 0;
    std::optional<WorkUnit> next_work(TimePoint) override {
      WorkUnit w;
      w.category = hw::WorkCategory::kGuest;
      w.remaining = Duration::us(300);
      w.on_complete = [this] { ++completed; };
      return w;
    }
  } client;
  hv_.set_partition_client(p0_, &client);
  hv_.start();
  sim_.run_until(TimePoint::at_us(1000));
  // Slot 0 is 1000us: three 300us units complete, the fourth is preempted.
  EXPECT_EQ(client.completed, 3u);
  sim_.run_until(TimePoint::at_us(2400));
  // The fourth unit ran [900, 1000), was preempted with 200us left, resumed
  // at 2011 and finished at 2211. The fifth unit is still in flight at 2400.
  EXPECT_EQ(client.completed, 4u);
  // Accounted guest time: all of slot 0 (1000us, no switch-in cost at t=0)
  // plus the resumed remainder [2011, 2211); the in-flight unit is only
  // accounted at its next completion or preemption.
  EXPECT_EQ(hv_.partition(p0_).guest_time(), Duration::us(1200));
}

TEST_F(HypervisorTest, GuestTimeAccountingMatchesSlotShare) {
  struct BusyClient : PartitionClient {
    std::optional<WorkUnit> next_work(TimePoint) override {
      WorkUnit w;
      w.remaining = Duration::us(100);
      return w;
    }
  } client;
  hv_.set_partition_client(p1_, &client);
  hv_.start();
  sim_.run_until(TimePoint::at_us(4000));
  // p1 slots: [1011, 2000) and [3011, 4000) -> 2 * 989us of guest time.
  EXPECT_EQ(hv_.partition(p1_).guest_time(), Duration::us(2 * 989));
  EXPECT_EQ(hv_.partition(p0_).guest_time(), Duration::zero());
}

}  // namespace
}  // namespace rthv::hv
