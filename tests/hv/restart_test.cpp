// Partition restart (health-management action): queued events and saved
// work are discarded, the guest is notified, interpositions targeting the
// restarted partition terminate, and the partition keeps running afterwards.
#include <gtest/gtest.h>

#include <vector>

#include "hv/hypervisor.hpp"
#include "hw/platform.hpp"
#include "sim/simulator.hpp"

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

class RestartTest : public ::testing::Test {
 protected:
  RestartTest() : platform_(sim_, platform_config()), hv_(platform_, overheads()) {
    p0_ = hv_.add_partition("p0");
    p1_ = hv_.add_partition("p1");
    hv_.set_schedule({{p0_, Duration::us(1000)}, {p1_, Duration::us(1000)}});
    IrqSourceConfig cfg;
    cfg.name = "src";
    cfg.line = 1;
    cfg.subscriber = p0_;
    cfg.c_top = Duration::us(5);
    cfg.c_bottom = Duration::us(20);
    sid_ = hv_.add_irq_source(cfg);
    timer_ = &platform_.add_timer(1);
    hv_.set_completion_hook([this](const CompletedIrq& rec) { completions_.push_back(rec); });
  }

  static hw::PlatformConfig platform_config() {
    hw::PlatformConfig cfg;
    cfg.ctx_invalidate_instructions = 1000;
    cfg.ctx_writeback_cycles = 1000;
    return cfg;
  }
  static OverheadConfig overheads() {
    OverheadConfig cfg;
    cfg.monitor_instructions = 200;
    cfg.sched_manipulation_instructions = 1000;
    cfg.tdma_tick_instructions = 200;
    return cfg;
  }

  void raise_at(TimePoint t) {
    sim_.schedule_at(t, [this] { timer_->program(Duration::zero()); });
  }

  sim::Simulator sim_;
  hw::Platform platform_;
  Hypervisor hv_;
  PartitionId p0_ = 0, p1_ = 0;
  IrqSourceId sid_ = 0;
  hw::HwTimer* timer_ = nullptr;
  std::vector<CompletedIrq> completions_;
};

TEST_F(RestartTest, DiscardsQueuedEventsAndNotifiesClient) {
  struct Client : PartitionClient {
    int restarts = 0;
    std::optional<WorkUnit> next_work(TimePoint) override { return std::nullopt; }
    void on_restart() override { ++restarts; }
  } client;
  hv_.set_partition_client(p0_, &client);
  hv_.start();
  // Queue three delayed events during p1's slot, then restart p0 at 1500.
  raise_at(TimePoint::at_us(1100));
  raise_at(TimePoint::at_us(1200));
  raise_at(TimePoint::at_us(1300));
  sim_.schedule_at(TimePoint::at_us(1500), [this] { hv_.restart_partition(p0_); });
  sim_.run_until(TimePoint::at_us(3000));
  EXPECT_EQ(completions_.size(), 0u);  // all three discarded
  EXPECT_EQ(client.restarts, 1);
  EXPECT_EQ(hv_.partition_restarts(), 1u);
  EXPECT_TRUE(hv_.partition(p0_).irq_queue().empty());
}

TEST_F(RestartTest, EventsAfterRestartAreProcessedNormally) {
  hv_.start();
  raise_at(TimePoint::at_us(1100));
  sim_.schedule_at(TimePoint::at_us(1500), [this] { hv_.restart_partition(p0_); });
  raise_at(TimePoint::at_us(1700));  // after the restart
  sim_.run_until(TimePoint::at_us(3000));
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].seq, 1u);  // only the post-restart event survives
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kDelayed);
}

TEST_F(RestartTest, CancelsRunningWorkOfRestartedPartition) {
  struct Client : PartitionClient {
    std::uint64_t completed = 0;
    std::optional<WorkUnit> next_work(TimePoint) override {
      WorkUnit w;
      w.remaining = Duration::us(400);
      w.on_complete = [this] { ++completed; };
      return w;
    }
  } client;
  hv_.set_partition_client(p0_, &client);
  hv_.start();
  // Restart mid-work-unit: the unit [0,400) is cancelled at 200; the next
  // unit starts right away and completes at 600.
  sim_.schedule_at(TimePoint::at_us(200), [this] { hv_.restart_partition(p0_); });
  sim_.run_until(TimePoint::at_us(650));
  EXPECT_EQ(client.completed, 1u);  // the cancelled unit never completed
}

TEST_F(RestartTest, TerminatesInterpositionTargetingRestartedPartition) {
  hv_.set_monitor(sid_, std::make_unique<mon::AlwaysAdmitMonitor>());
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  raise_at(TimePoint::at_us(1100));  // interposes into p0 at ~1121
  sim_.schedule_at(TimePoint::at_us(1130), [this] { hv_.restart_partition(p0_); });
  sim_.run_until(TimePoint::at_us(3000));
  // The interposed bottom handler was discarded mid-flight.
  EXPECT_EQ(completions_.size(), 0u);
  EXPECT_FALSE(hv_.interpose_active());
  // The interrupted partition p1 got its context back.
  sim_.run_until(TimePoint::at_us(3000));
  EXPECT_EQ(hv_.partition_restarts(), 1u);
}

TEST_F(RestartTest, RestartDuringHvContextIsDeferredNotLost) {
  // Trigger the restart from a health callback, which fires inside the
  // hypervisor's IRQ context (queue overflow path).
  Hypervisor hv2(platform_, overheads());
  const auto a = hv2.add_partition("a", /*irq_queue_capacity=*/1);
  const auto b = hv2.add_partition("b");
  hv2.set_schedule({{a, Duration::us(1000)}, {b, Duration::us(1000)}});
  IrqSourceConfig cfg;
  cfg.name = "s";
  cfg.line = 2;
  cfg.subscriber = a;
  cfg.c_top = Duration::us(5);
  cfg.c_bottom = Duration::us(20);
  hv2.add_irq_source(cfg);
  auto& t2 = platform_.add_timer(2);
  hv2.health().set_callback([&](const HealthEvent& e) {
    if (e.kind == HealthEventKind::kIrqQueueOverflow) {
      hv2.restart_partition(e.partition);  // ARINC653-style HM policy
    }
  });
  hv2.start();
  // Two quick foreign events: the second overflows the 1-slot queue.
  sim_.schedule_at(TimePoint::at_us(1100), [&] { t2.program(Duration::zero()); });
  sim_.schedule_at(TimePoint::at_us(1150), [&] { t2.program(Duration::zero()); });
  sim_.run_until(TimePoint::at_us(3000));
  EXPECT_EQ(hv2.partition_restarts(), 1u);
  EXPECT_TRUE(hv2.partition(a).irq_queue().empty());
}

TEST_F(RestartTest, RestartReenablesVirtualIrqs) {
  hv_.start();
  hv_.vint_set(false);  // p0 is current at t=0
  EXPECT_FALSE(hv_.partition(p0_).virtual_irq_enabled());
  hv_.restart_partition(p0_);
  EXPECT_TRUE(hv_.partition(p0_).virtual_irq_enabled());
}

}  // namespace
}  // namespace rthv::hv
