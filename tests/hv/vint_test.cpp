// Guest virtual-interrupt masking: while a partition has its virtual IRQs
// disabled (critical section), queued bottom handlers are not dispatched in
// it and interpositions into it are denied; re-enabling drains the queue at
// the next work-unit boundary.
#include <gtest/gtest.h>

#include <vector>

#include "hv/hypervisor.hpp"
#include "hw/platform.hpp"
#include "sim/simulator.hpp"

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

class VintTest : public ::testing::Test {
 protected:
  VintTest() : platform_(sim_, platform_config()), hv_(platform_, overheads()) {
    p0_ = hv_.add_partition("p0");
    p1_ = hv_.add_partition("p1");
    hv_.set_schedule({{p0_, Duration::us(1000)}, {p1_, Duration::us(1000)}});
    IrqSourceConfig cfg;
    cfg.name = "src";
    cfg.line = 1;
    cfg.subscriber = p0_;
    cfg.c_top = Duration::us(5);
    cfg.c_bottom = Duration::us(20);
    sid_ = hv_.add_irq_source(cfg);
    timer_ = &platform_.add_timer(1);
    hv_.set_completion_hook([this](const CompletedIrq& rec) { completions_.push_back(rec); });
  }

  static hw::PlatformConfig platform_config() {
    hw::PlatformConfig cfg;
    cfg.ctx_invalidate_instructions = 1000;
    cfg.ctx_writeback_cycles = 1000;
    return cfg;
  }
  static OverheadConfig overheads() {
    OverheadConfig cfg;
    cfg.monitor_instructions = 200;
    cfg.sched_manipulation_instructions = 1000;
    cfg.tdma_tick_instructions = 200;
    return cfg;
  }

  void raise_at(TimePoint t) {
    sim_.schedule_at(t, [this] { timer_->program(Duration::zero()); });
  }

  sim::Simulator sim_;
  hw::Platform platform_;
  Hypervisor hv_;
  PartitionId p0_ = 0, p1_ = 0;
  IrqSourceId sid_ = 0;
  hw::HwTimer* timer_ = nullptr;
  std::vector<CompletedIrq> completions_;
};

// A client that runs one critical section: disables virtual IRQs for its
// first work unit, then re-enables them in the unit's completion hook.
struct CriticalSectionClient : PartitionClient {
  Hypervisor* hv = nullptr;
  Duration section_length;
  bool section_issued = false;
  std::optional<WorkUnit> next_work(TimePoint) override {
    if (section_issued) return std::nullopt;
    section_issued = true;
    hv->vint_set(false);
    WorkUnit w;
    w.remaining = section_length;
    w.on_complete = [this] { hv->vint_set(true); };
    return w;
  }
};

TEST_F(VintTest, MaskingDefersDirectBottomHandler) {
  CriticalSectionClient client;
  client.hv = &hv_;
  client.section_length = Duration::us(400);
  hv_.set_partition_client(p0_, &client);
  hv_.start();
  // IRQ arrives mid-critical-section (at 100us; the section runs 0..400).
  raise_at(TimePoint::at_us(100));
  sim_.run_until(TimePoint::at_us(1000));
  ASSERT_EQ(completions_.size(), 1u);
  // Section: [0,100) + top handler [100,105) + remainder [105,405); the
  // bottom handler runs only after the completion hook re-enables vIRQs.
  EXPECT_EQ(completions_[0].bh_end, TimePoint::at_us(425));
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kDirect);
}

TEST_F(VintTest, UnmaskedHandlerRunsImmediately) {
  hv_.start();
  raise_at(TimePoint::at_us(100));
  sim_.run_until(TimePoint::at_us(1000));
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].bh_end, TimePoint::at_us(125));
}

TEST_F(VintTest, MaskingDeniesInterposition) {
  hv_.set_monitor(sid_, std::make_unique<mon::AlwaysAdmitMonitor>());
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  CriticalSectionClient client;
  client.hv = &hv_;
  // The critical section is longer than p0's slot: it runs [0, 1000), is
  // preempted by the slot switch, and resumes at 2011 -- so p0 stays masked
  // throughout p1's slot, where the IRQ arrives.
  client.section_length = Duration::us(1500);
  hv_.set_partition_client(p0_, &client);
  hv_.start();
  raise_at(TimePoint::at_us(1100));
  sim_.run_until(TimePoint::at_us(3000));
  ASSERT_EQ(completions_.size(), 1u);
  // Denied interposition (subscriber masked): the event waited for p0's
  // slot, and even there it ran only after the critical section finished.
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kDelayed);
  EXPECT_EQ(hv_.irq_stats().denied_guest_masked, 1u);
  EXPECT_EQ(hv_.irq_stats().interpose_started, 0u);
  // Section: [0,1000) + [2011,2511); BH after re-enable: 2511 + 20.
  EXPECT_EQ(completions_[0].bh_end, TimePoint::at_us(2531));
}

TEST_F(VintTest, VintStateQueryFollowsCurrentPartition) {
  hv_.start();
  EXPECT_TRUE(hv_.vint_enabled());
  hv_.vint_set(false);
  EXPECT_FALSE(hv_.vint_enabled());
  EXPECT_FALSE(hv_.partition(p0_).virtual_irq_enabled());
  EXPECT_TRUE(hv_.partition(p1_).virtual_irq_enabled());
  hv_.vint_set(true);
  EXPECT_TRUE(hv_.vint_enabled());
}

}  // namespace
}  // namespace rthv::hv
