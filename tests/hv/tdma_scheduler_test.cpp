#include "hv/tdma_scheduler.hpp"

#include <gtest/gtest.h>

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

std::vector<TdmaSlot> paper_slots() {
  return {{0, Duration::us(6000)}, {1, Duration::us(6000)}, {2, Duration::us(2000)}};
}

TEST(TdmaSchedulerTest, CycleLengthIsSlotSum) {
  TdmaScheduler s(paper_slots());
  EXPECT_EQ(s.cycle_length(), Duration::us(14000));
}

TEST(TdmaSchedulerTest, InitialSlotIsFirst) {
  TdmaScheduler s(paper_slots());
  EXPECT_EQ(s.current_owner(), 0u);
  EXPECT_EQ(s.current_index(), 0u);
  EXPECT_EQ(s.current_boundary(), TimePoint::at_us(6000));
}

TEST(TdmaSchedulerTest, AdvanceWalksTheGrid) {
  TdmaScheduler s(paper_slots());
  EXPECT_EQ(s.advance(), 1u);
  EXPECT_EQ(s.current_boundary(), TimePoint::at_us(12000));
  EXPECT_EQ(s.advance(), 2u);
  EXPECT_EQ(s.current_boundary(), TimePoint::at_us(14000));
  EXPECT_EQ(s.advance(), 0u);
  EXPECT_EQ(s.current_boundary(), TimePoint::at_us(20000));
}

TEST(TdmaSchedulerTest, GridStaysFixedOverManyCycles) {
  TdmaScheduler s(paper_slots());
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 3; ++i) s.advance();
  }
  EXPECT_EQ(s.cycles_completed(), 100u);
  // After 100 full cycles we are back at slot 0 ending at 100*14000 + 6000.
  EXPECT_EQ(s.current_owner(), 0u);
  EXPECT_EQ(s.current_boundary(), TimePoint::at_us(100 * 14000 + 6000));
}

TEST(TdmaSchedulerTest, SlotLengthLookup) {
  TdmaScheduler s(paper_slots());
  EXPECT_EQ(s.slot_length_of(1), Duration::us(6000));
  EXPECT_EQ(s.slot_length_of(2), Duration::us(2000));
  EXPECT_EQ(s.slot_length_of(99), Duration::zero());
}

TEST(TdmaSchedulerTest, SinglePartitionCycles) {
  TdmaScheduler s({{0, Duration::us(500)}});
  EXPECT_EQ(s.advance(), 0u);
  EXPECT_EQ(s.cycles_completed(), 1u);
  EXPECT_EQ(s.current_boundary(), TimePoint::at_us(1000));
}

TEST(TdmaSchedulerTest, PartitionMayOwnMultipleSlots) {
  TdmaScheduler s({{0, Duration::us(100)}, {1, Duration::us(50)}, {0, Duration::us(100)}});
  EXPECT_EQ(s.cycle_length(), Duration::us(250));
  EXPECT_EQ(s.advance(), 1u);
  EXPECT_EQ(s.advance(), 0u);
  // slot_length_of returns the first slot of the partition.
  EXPECT_EQ(s.slot_length_of(0), Duration::us(100));
}

}  // namespace
}  // namespace rthv::hv
