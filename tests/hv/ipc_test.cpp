#include "hv/ipc.hpp"

#include <gtest/gtest.h>

namespace rthv::hv {
namespace {

using sim::TimePoint;

TEST(IpcRouterTest, SendReceiveRoundTrip) {
  IpcRouter router(3);
  EXPECT_TRUE(router.send(0, 1, 7, 99, TimePoint::at_us(5)));
  const auto msg = router.receive(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->sender, 0u);
  EXPECT_EQ(msg->tag, 7u);
  EXPECT_EQ(msg->payload, 99u);
  EXPECT_EQ(msg->sent_at, TimePoint::at_us(5));
}

TEST(IpcRouterTest, ReceiveFromEmptyMailbox) {
  IpcRouter router(2);
  EXPECT_FALSE(router.receive(0).has_value());
}

TEST(IpcRouterTest, FifoPerMailbox) {
  IpcRouter router(2);
  router.send(0, 1, 1, 0, TimePoint::origin());
  router.send(0, 1, 2, 0, TimePoint::origin());
  EXPECT_EQ(router.receive(1)->tag, 1u);
  EXPECT_EQ(router.receive(1)->tag, 2u);
}

TEST(IpcRouterTest, MailboxesAreIndependent) {
  IpcRouter router(3);
  router.send(0, 1, 10, 0, TimePoint::origin());
  router.send(0, 2, 20, 0, TimePoint::origin());
  EXPECT_EQ(router.pending(1), 1u);
  EXPECT_EQ(router.pending(2), 1u);
  EXPECT_EQ(router.receive(2)->tag, 20u);
  EXPECT_EQ(router.pending(1), 1u);
}

TEST(IpcRouterTest, FullMailboxDropsAndCounts) {
  IpcRouter router(2, /*mailbox_capacity=*/2);
  EXPECT_TRUE(router.send(0, 1, 1, 0, TimePoint::origin()));
  EXPECT_TRUE(router.send(0, 1, 2, 0, TimePoint::origin()));
  EXPECT_FALSE(router.send(0, 1, 3, 0, TimePoint::origin()));
  EXPECT_EQ(router.dropped_total(), 1u);
  EXPECT_EQ(router.sent_total(), 2u);
}

TEST(IpcRouterTest, SelfSendAllowed) {
  IpcRouter router(1);
  EXPECT_TRUE(router.send(0, 0, 5, 6, TimePoint::origin()));
  EXPECT_EQ(router.receive(0)->payload, 6u);
}

}  // namespace
}  // namespace rthv::hv
