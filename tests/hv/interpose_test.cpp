// Tests of the interposed-execution engine: budget enforcement, queue-head
// FIFO semantics, deferred TDMA switches and the bounded-interference
// property (Eq. 14) that makes the scheme "sufficiently temporally
// independent".
#include <gtest/gtest.h>

#include <vector>

#include "hv/hypervisor.hpp"
#include "hw/platform.hpp"
#include "sim/simulator.hpp"

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

// Same cost model as hypervisor_test.cpp: ctx = 10us, sched = 5us,
// monitor = 1us, tick = 1us.
class InterposeTest : public ::testing::Test {
 protected:
  InterposeTest() : platform_(sim_, platform_config()), hv_(platform_, overheads()) {
    p0_ = hv_.add_partition("p0");
    p1_ = hv_.add_partition("p1");
    hv_.set_schedule({{p0_, Duration::us(1000)}, {p1_, Duration::us(1000)}});
    hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
    hv_.set_completion_hook([this](const CompletedIrq& rec) { completions_.push_back(rec); });
  }

  static hw::PlatformConfig platform_config() {
    hw::PlatformConfig cfg;
    cfg.ctx_invalidate_instructions = 1000;
    cfg.ctx_writeback_cycles = 1000;
    return cfg;
  }

  static OverheadConfig overheads() {
    OverheadConfig cfg;
    cfg.monitor_instructions = 200;
    cfg.sched_manipulation_instructions = 1000;
    cfg.tdma_tick_instructions = 200;
    return cfg;
  }

  IrqSourceId add_source(PartitionId subscriber, hw::IrqLine line, Duration c_bottom,
                         bool admit_always) {
    IrqSourceConfig cfg;
    cfg.name = "src" + std::to_string(line);
    cfg.line = line;
    cfg.subscriber = subscriber;
    cfg.c_top = Duration::us(5);
    cfg.c_bottom = c_bottom;
    const auto id = hv_.add_irq_source(cfg);
    if (admit_always) {
      hv_.set_monitor(id, std::make_unique<mon::AlwaysAdmitMonitor>());
    }
    timers_.push_back(&platform_.add_timer(line));
    return id;
  }

  void raise_at(std::size_t timer_index, TimePoint t) {
    sim_.schedule_at(t, [this, timer_index] {
      timers_[timer_index]->program(Duration::zero());
    });
  }

  sim::Simulator sim_;
  hw::Platform platform_;
  Hypervisor hv_;
  PartitionId p0_ = 0, p1_ = 0;
  std::vector<hw::HwTimer*> timers_;
  std::vector<CompletedIrq> completions_;
};

TEST_F(InterposeTest, BudgetExpiryCarriesBottomHandlerIntoOwnSlot) {
  // Source A (no monitor): C_BH = 100us, queued delayed. Source B (always
  // admitted): C_BH = 10us budget. B's admission runs the queue head (A's
  // event) for only 10us; the remaining 90us waits for p0's own slot.
  add_source(p0_, 1, Duration::us(100), /*admit_always=*/false);
  add_source(p0_, 2, Duration::us(10), /*admit_always=*/true);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));  // A: foreign, no monitor -> delayed
  raise_at(1, TimePoint::at_us(1200));  // B: admitted, budget 10us
  sim_.run_until(TimePoint::at_us(3000));

  ASSERT_EQ(completions_.size(), 2u);
  // A's BH: 10us inside B's interposition (1221-1231), 90us from slot start
  // dispatch at 2011 -> ends 2101. Classified delayed (it waited for the
  // slot).
  EXPECT_EQ(completions_[0].source, 0u);
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kDelayed);
  EXPECT_EQ(completions_[0].bh_end, TimePoint::at_us(2101));
  // B's event then runs its own 10us BH.
  EXPECT_EQ(completions_[1].source, 1u);
  EXPECT_EQ(completions_[1].bh_end, TimePoint::at_us(2111));
  EXPECT_EQ(completions_[1].handling, stats::HandlingClass::kDelayed);
}

TEST_F(InterposeTest, BudgetLeftoverDrainsNextQueuedEvent) {
  // Two events of a 10us-BH source are queued when a third admission with a
  // 30us budget arrives: the interposition drains all three (30us budget =
  // 3 x 10us BHs... exactly the queue content).
  add_source(p0_, 1, Duration::us(10), /*admit_always=*/true);
  // Use a second source to deny the first two events: simpler -- use one
  // source and exploit that the interpose engine denies while busy? No:
  // distances are large here. Instead raise all three in a burst; the first
  // admission's budget is 10us and drains only the first event; the second
  // and third events each get their own admission on arrival. This test
  // asserts that back-to-back admissions during the same foreign slot work.
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));
  raise_at(0, TimePoint::at_us(1200));
  raise_at(0, TimePoint::at_us(1300));
  sim_.run_until(TimePoint::at_us(2000));
  ASSERT_EQ(completions_.size(), 3u);
  for (const auto& rec : completions_) {
    EXPECT_EQ(rec.handling, stats::HandlingClass::kInterposed);
    // Each admission: TH 5 + Mon 1 + sched 5 + ctx 10 + BH 10 = 31us.
    EXPECT_EQ(rec.latency(), Duration::us(31));
  }
}

TEST_F(InterposeTest, EventDuringInterposeIsDeniedBusy) {
  // A second event arrives while the first interposition is still running;
  // the engine refuses nested interposing and the event waits (it is then
  // drained by the *same* interposition only if budget remains -- here the
  // budget is exactly one BH, so it becomes delayed).
  add_source(p0_, 1, Duration::us(100), /*admit_always=*/true);
  hv_.start();
  raise_at(0, TimePoint::at_us(1100));
  raise_at(0, TimePoint::at_us(1150));  // lands inside the first BH
  sim_.run_until(TimePoint::at_us(3000));
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kInterposed);
  EXPECT_EQ(completions_[1].handling, stats::HandlingClass::kDelayed);
  EXPECT_EQ(hv_.irq_stats().denied_engine_busy, 1u);
}

TEST_F(InterposeTest, SlotSwitchDeferredUntilBudgetEnd) {
  // Interposition straddles the p1 -> p0 boundary at t = 2000.
  add_source(p0_, 1, Duration::us(100), /*admit_always=*/true);
  hv_.start();
  raise_at(0, TimePoint::at_us(1980));
  // TH 1980-1985, Mon -1986, sched -1991, ctx -2001 (tick at 2000 latched),
  // tick handled 2001-2002 and deferred, BH 2002-2102, then the deferred
  // switch: advance + ctx -> p0 from 2112.
  sim_.run_until(TimePoint::at_us(2200));
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kInterposed);
  EXPECT_EQ(completions_[0].bh_end, TimePoint::at_us(2102));
  EXPECT_EQ(hv_.irq_stats().deferred_slot_switches, 1u);
  EXPECT_EQ(hv_.current_partition(), p0_);
  // The grid is preserved: the next boundary is still 3000.
  EXPECT_EQ(hv_.scheduler().current_boundary(), TimePoint::at_us(3000));
}

TEST_F(InterposeTest, InterferenceOnInterruptedPartitionIsBounded) {
  // Eq. 14: within the observation window, p1 loses at most
  // ceil(dt/d_min) * C'_BH of its slot time to interposed handling.
  struct BusyClient : PartitionClient {
    std::optional<WorkUnit> next_work(TimePoint) override {
      WorkUnit w;
      w.remaining = Duration::us(50);
      return w;
    }
  } client;
  hv_.set_partition_client(p1_, &client);
  const Duration d_min = Duration::us(200);
  const Duration c_bh = Duration::us(20);
  const auto sid = add_source(p0_, 1, c_bh, /*admit_always=*/false);
  hv_.set_monitor(sid, std::make_unique<mon::DeltaMinMonitor>(d_min));
  hv_.start();
  // Conforming arrivals every 250us for 10 TDMA cycles: every foreign-slot
  // event is admitted, maximizing interference on p1.
  for (int i = 0; i < 80; ++i) {
    raise_at(0, TimePoint::at_us(100 + i * 250));
  }
  const auto horizon = TimePoint::at_us(20'000);
  sim_.run_until(horizon);

  // p1's nominal share: 10 slots x (1000 - 11)us switch-in cost.
  const Duration nominal = Duration::us(10 * 989);
  const Duration received = hv_.partition(p1_).guest_time();
  // C'_BH = 20 + 5 + 2*10 = 45us; admissions in p1's slots at most
  // ceil(10000/200) = 50 -> worst-case loss 2250us. Also subtract top
  // handlers (<= 80 x 6us) and in-flight work (not yet accounted).
  const Duration bound = Duration::us(50 * 45 + 80 * 6 + 50);
  EXPECT_GE(received, nominal - bound);
  // And the scheme is live: a meaningful number of interpositions happened.
  EXPECT_GT(hv_.irq_stats().interpose_started, 20u);
}

TEST_F(InterposeTest, NoInterferenceWhenMonitorDeniesEverything) {
  // d_min larger than the run: after the first admission everything is
  // denied, so p1 keeps (almost) its whole slot.
  struct BusyClient : PartitionClient {
    std::optional<WorkUnit> next_work(TimePoint) override {
      WorkUnit w;
      w.remaining = Duration::us(50);
      return w;
    }
  } client;
  hv_.set_partition_client(p1_, &client);
  const auto sid = add_source(p0_, 1, Duration::us(20), /*admit_always=*/false);
  hv_.set_monitor(sid, std::make_unique<mon::DeltaMinMonitor>(Duration::s(100)));
  hv_.start();
  for (int i = 0; i < 50; ++i) {
    raise_at(0, TimePoint::at_us(1100 + i * 17));
  }
  sim_.run_until(TimePoint::at_us(2000));
  EXPECT_LE(hv_.irq_stats().interpose_started, 1u);
  // p1's slot [1011, 2000): guest time less only the 50 top handlers
  // (5us + 1us monitor each) and one possible interposition.
  const Duration lost_to_tops = Duration::us(50 * 6);
  const Duration one_interpose = Duration::us(20 + 5 + 20);
  EXPECT_GE(hv_.partition(p1_).guest_time(),
            Duration::us(989) - lost_to_tops - one_interpose - Duration::us(50));
}

TEST_F(InterposeTest, InterposeIntoIdlePartitionWorks) {
  // The subscriber partition has no client at all; interposed BHs still run.
  add_source(p0_, 1, Duration::us(20), /*admit_always=*/true);
  hv_.start();
  raise_at(0, TimePoint::at_us(1500));
  sim_.run_until(TimePoint::at_us(1600));
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].handling, stats::HandlingClass::kInterposed);
}

TEST_F(InterposeTest, HousekeepingSlotAlsoInterposable) {
  // Third partition with a short slot (the paper's housekeeping partition):
  // IRQs arriving in its slot are interposed like any other foreign slot.
  sim::Simulator sim;
  hw::Platform platform(sim, platform_config());
  Hypervisor hv(platform, overheads());
  const auto a = hv.add_partition("app1");
  const auto b = hv.add_partition("app2");
  const auto hk = hv.add_partition("housekeeping");
  hv.set_schedule({{a, Duration::us(6000)}, {b, Duration::us(6000)}, {hk, Duration::us(2000)}});
  hv.set_top_handler_mode(TopHandlerMode::kInterposing);
  IrqSourceConfig cfg;
  cfg.name = "io";
  cfg.line = 1;
  cfg.subscriber = b;
  cfg.c_top = Duration::us(5);
  cfg.c_bottom = Duration::us(40);
  const auto sid = hv.add_irq_source(cfg);
  hv.set_monitor(sid, std::make_unique<mon::AlwaysAdmitMonitor>());
  auto& timer = platform.add_timer(1);
  std::vector<CompletedIrq> recs;
  hv.set_completion_hook([&](const CompletedIrq& r) { recs.push_back(r); });
  hv.start();
  sim.schedule_at(TimePoint::at_us(12'500),  // housekeeping slot [12000, 14000)
                  [&timer] { timer.program(Duration::zero()); });
  sim.run_until(TimePoint::at_us(13'000));
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].handling, stats::HandlingClass::kInterposed);
  // TH 5 + Mon 1 + sched 5 + ctx 10 + BH 40 = 61us.
  EXPECT_EQ(recs[0].latency(), Duration::us(61));
}

}  // namespace
}  // namespace rthv::hv
