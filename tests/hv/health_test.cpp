// Health monitoring: unit tests of the HealthMonitor plus end-to-end tests
// that the hypervisor reports the right events.
#include "hv/health.hpp"

#include <gtest/gtest.h>

#include "hv/hypervisor.hpp"
#include "hw/platform.hpp"
#include "sim/simulator.hpp"

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(HealthMonitorTest, CountsPerKind) {
  HealthMonitor hm;
  hm.report(HealthEvent{TimePoint::origin(), HealthEventKind::kIrqQueueOverflow, 0, 0});
  hm.report(HealthEvent{TimePoint::origin(), HealthEventKind::kIrqQueueOverflow, 0, 0});
  hm.report(HealthEvent{TimePoint::origin(), HealthEventKind::kBudgetOverrun, 1, 0});
  EXPECT_EQ(hm.count(HealthEventKind::kIrqQueueOverflow), 2u);
  EXPECT_EQ(hm.count(HealthEventKind::kBudgetOverrun), 1u);
  EXPECT_EQ(hm.count(HealthEventKind::kMonitorViolation), 0u);
  EXPECT_EQ(hm.total(), 3u);
}

TEST(HealthMonitorTest, RingBufferBounded) {
  HealthMonitor hm(/*ring_capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    hm.report(HealthEvent{TimePoint::at_us(i), HealthEventKind::kDeferredBoundary, 0, 0});
  }
  EXPECT_EQ(hm.recent().size(), 3u);
  EXPECT_EQ(hm.recent().front().time, TimePoint::at_us(2));  // oldest kept
  EXPECT_EQ(hm.total(), 5u);  // counters keep counting past the ring
}

TEST(HealthMonitorTest, CallbackInvoked) {
  HealthMonitor hm;
  HealthEventKind seen = HealthEventKind::kCount_;
  hm.set_callback([&](const HealthEvent& e) { seen = e.kind; });
  hm.report(HealthEvent{TimePoint::origin(), HealthEventKind::kIrqRaiseLost, 0, 0});
  EXPECT_EQ(seen, HealthEventKind::kIrqRaiseLost);
}

TEST(HealthMonitorTest, ClearResetsEverything) {
  HealthMonitor hm;
  hm.report(HealthEvent{TimePoint::origin(), HealthEventKind::kMonitorViolation, 0, 0});
  hm.clear();
  EXPECT_EQ(hm.total(), 0u);
  EXPECT_TRUE(hm.recent().empty());
}

TEST(HealthMonitorTest, KindNames) {
  EXPECT_EQ(to_string(HealthEventKind::kIrqQueueOverflow), "irq-queue-overflow");
  EXPECT_EQ(to_string(HealthEventKind::kBudgetOverrun), "budget-overrun");
}

// --- end-to-end: the hypervisor reports events ------------------------------

class HealthEndToEndTest : public ::testing::Test {
 protected:
  HealthEndToEndTest() : platform_(sim_, platform_config()), hv_(platform_, overheads()) {
    p0_ = hv_.add_partition("p0", /*irq_queue_capacity=*/2);
    p1_ = hv_.add_partition("p1");
    hv_.set_schedule({{p0_, Duration::us(1000)}, {p1_, Duration::us(1000)}});
  }

  static hw::PlatformConfig platform_config() {
    hw::PlatformConfig cfg;
    cfg.ctx_invalidate_instructions = 1000;
    cfg.ctx_writeback_cycles = 1000;
    return cfg;
  }
  static OverheadConfig overheads() {
    OverheadConfig cfg;
    cfg.monitor_instructions = 200;
    cfg.sched_manipulation_instructions = 1000;
    cfg.tdma_tick_instructions = 200;
    return cfg;
  }

  IrqSourceId add_source(Duration c_bottom) {
    IrqSourceConfig cfg;
    cfg.name = "src";
    cfg.line = 1;
    cfg.subscriber = p0_;
    cfg.c_top = Duration::us(5);
    cfg.c_bottom = c_bottom;
    const auto id = hv_.add_irq_source(cfg);
    timer_ = &platform_.add_timer(1);
    return id;
  }

  void raise_at(TimePoint t) {
    sim_.schedule_at(t, [this] { timer_->program(Duration::zero()); });
  }

  sim::Simulator sim_;
  hw::Platform platform_;
  Hypervisor hv_;
  PartitionId p0_ = 0, p1_ = 0;
  hw::HwTimer* timer_ = nullptr;
};

TEST_F(HealthEndToEndTest, QueueOverflowReported) {
  add_source(Duration::us(20));
  hv_.start();
  for (int i = 0; i < 4; ++i) raise_at(TimePoint::at_us(1100 + i * 50));
  sim_.run_until(TimePoint::at_us(1900));
  EXPECT_EQ(hv_.health().count(HealthEventKind::kIrqQueueOverflow), 2u);
  ASSERT_FALSE(hv_.health().recent().empty());
  EXPECT_EQ(hv_.health().recent().back().partition, p0_);
  EXPECT_EQ(hv_.health().recent().back().source, 0u);
}

TEST_F(HealthEndToEndTest, MonitorViolationReported) {
  const auto sid = add_source(Duration::us(20));
  hv_.set_monitor(sid, std::make_unique<mon::DeltaMinMonitor>(Duration::us(100000)));
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  raise_at(TimePoint::at_us(1100));  // admitted (first activation)
  raise_at(TimePoint::at_us(1400));  // violates d_min
  sim_.run_until(TimePoint::at_us(2500));
  EXPECT_EQ(hv_.health().count(HealthEventKind::kMonitorViolation), 1u);
}

TEST_F(HealthEndToEndTest, DeferredBoundaryReported) {
  const auto sid = add_source(Duration::us(100));
  hv_.set_monitor(sid, std::make_unique<mon::AlwaysAdmitMonitor>());
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  raise_at(TimePoint::at_us(1980));  // interposition straddles the boundary
  sim_.run_until(TimePoint::at_us(2300));
  EXPECT_EQ(hv_.health().count(HealthEventKind::kDeferredBoundary), 1u);
}

TEST_F(HealthEndToEndTest, RaiseLostReported) {
  add_source(Duration::us(20));
  hv_.start();
  // Two raises so close that the second hits the still-pending latch (the
  // first is latched while the CPU is in the boundary's hypervisor
  // sequence at t=1000..1011).
  raise_at(TimePoint::at_us(1001));
  raise_at(TimePoint::at_us(1002));
  sim_.run_until(TimePoint::at_us(2500));
  EXPECT_EQ(hv_.health().count(HealthEventKind::kIrqRaiseLost), 1u);
  EXPECT_EQ(hv_.health().recent().front().kind, HealthEventKind::kIrqRaiseLost);
}

TEST_F(HealthEndToEndTest, BudgetOverrunReported) {
  // Source A (no monitor, big BH) queued; source B (admitted, small budget)
  // drains A's handler partially -> budget overrun.
  IrqSourceConfig a;
  a.name = "a";
  a.line = 1;
  a.subscriber = p0_;
  a.c_top = Duration::us(5);
  a.c_bottom = Duration::us(100);
  hv_.add_irq_source(a);
  auto& timer_a = platform_.add_timer(1);
  IrqSourceConfig b;
  b.name = "b";
  b.line = 2;
  b.subscriber = p0_;
  b.c_top = Duration::us(5);
  b.c_bottom = Duration::us(10);
  const auto sid_b = hv_.add_irq_source(b);
  hv_.set_monitor(sid_b, std::make_unique<mon::AlwaysAdmitMonitor>());
  auto& timer_b = platform_.add_timer(2);
  hv_.set_top_handler_mode(TopHandlerMode::kInterposing);
  hv_.start();
  sim_.schedule_at(TimePoint::at_us(1100), [&] { timer_a.program(Duration::zero()); });
  sim_.schedule_at(TimePoint::at_us(1300), [&] { timer_b.program(Duration::zero()); });
  sim_.run_until(TimePoint::at_us(2500));
  EXPECT_EQ(hv_.health().count(HealthEventKind::kBudgetOverrun), 1u);
}

}  // namespace
}  // namespace rthv::hv
