#include "hv/irq_queue.hpp"

#include <gtest/gtest.h>

namespace rthv::hv {
namespace {

IrqEvent event(std::uint64_t seq) {
  IrqEvent e;
  e.source = 0;
  e.seq = seq;
  return e;
}

TEST(IrqQueueTest, StartsEmpty) {
  IrqQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
}

TEST(IrqQueueTest, FifoOrder) {
  IrqQueue q(4);
  q.push(event(1));
  q.push(event(2));
  q.push(event(3));
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.front().seq, 2u);
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_EQ(q.pop().seq, 3u);
}

TEST(IrqQueueTest, FullQueueDropsAndCounts) {
  IrqQueue q(2);
  EXPECT_TRUE(q.push(event(1)));
  EXPECT_TRUE(q.push(event(2)));
  EXPECT_FALSE(q.push(event(3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.total_pushed(), 2u);
}

TEST(IrqQueueTest, DropObserverFiresOncePerOverflow) {
  IrqQueue q(2);
  std::uint64_t observed = 0;
  std::uint64_t last_dropped_seq = 0;
  q.set_drop_observer([&](const IrqEvent& e) {
    ++observed;
    last_dropped_seq = e.seq;
  });
  q.push(event(1));
  q.push(event(2));
  EXPECT_EQ(observed, 0u) << "observer must not fire on successful pushes";
  q.push(event(3));
  q.push(event(4));
  EXPECT_EQ(observed, 2u);
  EXPECT_EQ(last_dropped_seq, 4u) << "observer must see the dropped event";
  EXPECT_EQ(q.drops(), observed) << "observer calls must track the drop count";
}

TEST(IrqQueueTest, StormPastCapacityKeepsOldestEvents) {
  // A storm of 64 pushes against a 4-slot queue: the queue keeps the first
  // four events (FIFO, no overwrite) and reports every other push as a drop.
  IrqQueue q(4);
  std::uint64_t observed = 0;
  q.set_drop_observer([&observed](const IrqEvent&) { ++observed; });
  for (std::uint64_t seq = 1; seq <= 64; ++seq) q.push(event(seq));
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.drops(), 60u);
  EXPECT_EQ(observed, 60u);
  EXPECT_EQ(q.total_pushed(), 4u);
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.pop().seq, 2u);
}

TEST(IrqQueueTest, PopMakesRoom) {
  IrqQueue q(1);
  q.push(event(1));
  q.pop();
  EXPECT_TRUE(q.push(event(2)));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(IrqQueueTest, HighWatermarkTracksPeak) {
  IrqQueue q(8);
  q.push(event(1));
  q.push(event(2));
  q.push(event(3));
  q.pop();
  q.pop();
  q.push(event(4));
  EXPECT_EQ(q.high_watermark(), 3u);
}

TEST(IrqQueueTest, EventPayloadPreserved) {
  IrqQueue q(2);
  IrqEvent e;
  e.source = 7;
  e.seq = 42;
  e.raise_time = sim::TimePoint::at_us(100);
  e.th_start = sim::TimePoint::at_us(101);
  e.arrived_in_own_slot = true;
  e.admitted_interpose = true;
  q.push(e);
  const IrqEvent out = q.pop();
  EXPECT_EQ(out.source, 7u);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.raise_time, sim::TimePoint::at_us(100));
  EXPECT_EQ(out.th_start, sim::TimePoint::at_us(101));
  EXPECT_TRUE(out.arrived_in_own_slot);
  EXPECT_TRUE(out.admitted_interpose);
}

TEST(IrqQueueTest, SnapshotRoundTripRestoresRingAndCounters) {
  IrqQueue q(4);
  q.push(event(1));
  q.push(event(2));
  q.push(event(3));
  q.pop();
  for (std::uint64_t seq = 4; seq <= 8; ++seq) q.push(event(seq));  // 3 drops

  sim::StateWriter w;
  q.snapshot_state(w);
  const std::vector<std::uint64_t> words = w.take();

  // Mutate past the checkpoint, then restore and verify bit-exact state.
  q.pop();
  q.pop();
  q.push(event(99));
  sim::StateReader r(words);
  q.restore_state(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.drops(), 3u);
  EXPECT_EQ(q.total_pushed(), 5u);
  EXPECT_EQ(q.high_watermark(), 4u);
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_EQ(q.pop().seq, 4u);
  EXPECT_EQ(q.pop().seq, 5u);
}

TEST(IrqQueueTest, RestoreOntoDifferentCapacityThrows) {
  // The stream is self-describing: the serialized structural capacity must
  // match the restoring queue's in every build type, not just under assert.
  IrqQueue small(2);
  small.push(event(1));
  sim::StateWriter w;
  small.snapshot_state(w);
  const std::vector<std::uint64_t> words = w.take();

  IrqQueue big(8);
  sim::StateReader r(words);
  EXPECT_THROW(big.restore_state(r), std::logic_error);
}

}  // namespace
}  // namespace rthv::hv
