#include "hv/irq_queue.hpp"

#include <gtest/gtest.h>

namespace rthv::hv {
namespace {

IrqEvent event(std::uint64_t seq) {
  IrqEvent e;
  e.source = 0;
  e.seq = seq;
  return e;
}

TEST(IrqQueueTest, StartsEmpty) {
  IrqQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
}

TEST(IrqQueueTest, FifoOrder) {
  IrqQueue q(4);
  q.push(event(1));
  q.push(event(2));
  q.push(event(3));
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.front().seq, 2u);
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_EQ(q.pop().seq, 3u);
}

TEST(IrqQueueTest, FullQueueDropsAndCounts) {
  IrqQueue q(2);
  EXPECT_TRUE(q.push(event(1)));
  EXPECT_TRUE(q.push(event(2)));
  EXPECT_FALSE(q.push(event(3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.total_pushed(), 2u);
}

TEST(IrqQueueTest, PopMakesRoom) {
  IrqQueue q(1);
  q.push(event(1));
  q.pop();
  EXPECT_TRUE(q.push(event(2)));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(IrqQueueTest, HighWatermarkTracksPeak) {
  IrqQueue q(8);
  q.push(event(1));
  q.push(event(2));
  q.push(event(3));
  q.pop();
  q.pop();
  q.push(event(4));
  EXPECT_EQ(q.high_watermark(), 3u);
}

TEST(IrqQueueTest, EventPayloadPreserved) {
  IrqQueue q(2);
  IrqEvent e;
  e.source = 7;
  e.seq = 42;
  e.raise_time = sim::TimePoint::at_us(100);
  e.th_start = sim::TimePoint::at_us(101);
  e.arrived_in_own_slot = true;
  e.admitted_interpose = true;
  q.push(e);
  const IrqEvent out = q.pop();
  EXPECT_EQ(out.source, 7u);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.raise_time, sim::TimePoint::at_us(100));
  EXPECT_EQ(out.th_start, sim::TimePoint::at_us(101));
  EXPECT_TRUE(out.arrived_in_own_slot);
  EXPECT_TRUE(out.admitted_interpose);
}

}  // namespace
}  // namespace rthv::hv
