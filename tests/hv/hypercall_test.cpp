// Hypercall behaviour end to end: IPC between guests through the
// hypervisor, and the work-available wake notification.
#include <gtest/gtest.h>

#include <vector>

#include "hv/hypervisor.hpp"
#include "hw/platform.hpp"
#include "sim/simulator.hpp"

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

class HypercallTest : public ::testing::Test {
 protected:
  HypercallTest() : platform_(sim_, platform_config()), hv_(platform_, overheads()) {
    p0_ = hv_.add_partition("p0");
    p1_ = hv_.add_partition("p1");
    hv_.set_schedule({{p0_, Duration::us(1000)}, {p1_, Duration::us(1000)}});
  }

  static hw::PlatformConfig platform_config() {
    hw::PlatformConfig cfg;
    cfg.ctx_invalidate_instructions = 1000;
    cfg.ctx_writeback_cycles = 1000;
    return cfg;
  }
  static OverheadConfig overheads() {
    OverheadConfig cfg;
    cfg.monitor_instructions = 200;
    cfg.sched_manipulation_instructions = 1000;
    cfg.tdma_tick_instructions = 200;
    return cfg;
  }

  sim::Simulator sim_;
  hw::Platform platform_;
  Hypervisor hv_;
  PartitionId p0_ = 0, p1_ = 0;
};

// A guest that sends one IPC message per completed work unit and records
// everything it receives.
struct IpcClient : PartitionClient {
  Hypervisor* hv = nullptr;
  PartitionId peer = 0;
  Duration unit = Duration::us(200);
  std::uint64_t sent = 0;
  std::vector<IpcMessage> received;
  std::optional<WorkUnit> next_work(TimePoint) override {
    WorkUnit w;
    w.remaining = unit;
    w.on_complete = [this] {
      hv->ipc_send(peer, /*tag=*/sent, /*payload=*/1000 + sent);
      ++sent;
      while (auto msg = hv->ipc_receive()) received.push_back(*msg);
    };
    return w;
  }
};

TEST_F(HypercallTest, IpcFlowsBetweenPartitions) {
  IpcClient a;
  a.hv = &hv_;
  a.peer = p1_;
  IpcClient b;
  b.hv = &hv_;
  b.peer = p0_;
  hv_.set_partition_client(p0_, &a);
  hv_.set_partition_client(p1_, &b);
  hv_.start();
  sim_.run_until(TimePoint::at_us(4000));  // two full cycles

  EXPECT_GT(a.sent, 3u);
  EXPECT_GT(b.sent, 3u);
  // b received a's messages in FIFO order with correct payloads.
  ASSERT_GT(b.received.size(), 2u);
  for (std::size_t i = 0; i < b.received.size(); ++i) {
    EXPECT_EQ(b.received[i].sender, p0_);
    EXPECT_EQ(b.received[i].tag, i);
    EXPECT_EQ(b.received[i].payload, 1000 + i);
  }
  // Messages carry their send timestamps.
  EXPECT_GT(b.received[0].sent_at, TimePoint::origin());
}

TEST_F(HypercallTest, IpcStatsCountTraffic) {
  IpcClient a;
  a.hv = &hv_;
  a.peer = p1_;
  hv_.set_partition_client(p0_, &a);
  hv_.start();
  sim_.run_until(TimePoint::at_us(2000));
  EXPECT_EQ(hv_.ipc().sent_total(), a.sent);
  EXPECT_EQ(hv_.ipc().dropped_total(), 0u);
  EXPECT_EQ(hv_.ipc().pending(p1_), a.sent);  // p1 has no client draining it
}

TEST_F(HypercallTest, NotifyWakesIdlePartition) {
  // A client that is initially idle and becomes ready via an external event.
  struct WakeableClient : PartitionClient {
    bool ready = false;
    std::uint64_t completed = 0;
    std::optional<WorkUnit> next_work(TimePoint) override {
      if (!ready) return std::nullopt;
      ready = false;
      WorkUnit w;
      w.remaining = Duration::us(50);
      w.on_complete = [this] { ++completed; };
      return w;
    }
  } client;
  hv_.set_partition_client(p0_, &client);
  hv_.start();
  // p0 idles; work appears at t=300 with a wake notification.
  sim_.schedule_at(TimePoint::at_us(300), [&] {
    client.ready = true;
    hv_.notify_work_available(p0_);
  });
  sim_.run_until(TimePoint::at_us(400));
  EXPECT_EQ(client.completed, 1u);  // ran [300, 350), not at the next slot

  // Without the notification, the same event would wait for the next
  // context switch into p0 (t = 2011).
  sim_.schedule_at(TimePoint::at_us(1500), [&] { client.ready = true; });
  sim_.run_until(TimePoint::at_us(1600));
  EXPECT_EQ(client.completed, 1u);  // p1's slot: nothing ran
  sim_.run_until(TimePoint::at_us(2100));
  EXPECT_EQ(client.completed, 2u);  // picked up at p0's next slot start
}

TEST_F(HypercallTest, NotifyIsNoOpForInactivePartition) {
  struct WakeableClient : PartitionClient {
    bool ready = false;
    std::optional<WorkUnit> next_work(TimePoint) override {
      if (!ready) return std::nullopt;
      ready = false;
      WorkUnit w;
      w.remaining = Duration::us(50);
      return w;
    }
  } client;
  hv_.set_partition_client(p1_, &client);
  hv_.start();
  // p0 is active; notifying for p1 must not dispatch p1's work now.
  sim_.schedule_at(TimePoint::at_us(100), [&] {
    client.ready = true;
    hv_.notify_work_available(p1_);
  });
  sim_.run_until(TimePoint::at_us(900));
  EXPECT_EQ(hv_.partition(p1_).guest_time(), Duration::zero());
  sim_.run_until(TimePoint::at_us(1200));
  EXPECT_GT(hv_.partition(p1_).guest_time(), Duration::zero());
}

TEST_F(HypercallTest, NotifyDuringCompletionCallbackDoesNotDoubleDispatch) {
  // Regression: a wake notification issued from inside a bottom-handler
  // completion callback must not dispatch while the engine's own dispatch
  // continuation is still unwinding (it used to trip assert(!running_)).
  IrqSourceConfig cfg;
  cfg.name = "src";
  cfg.line = 1;
  cfg.subscriber = p0_;
  cfg.c_top = Duration::us(5);
  cfg.c_bottom = Duration::us(20);
  hv_.add_irq_source(cfg);
  auto& timer = platform_.add_timer(1);

  struct NotifyingClient : PartitionClient {
    Hypervisor* hv = nullptr;
    PartitionId self = 0;
    bool work_ready = false;
    std::uint64_t units = 0;
    std::optional<WorkUnit> next_work(TimePoint) override {
      if (!work_ready) return std::nullopt;
      work_ready = false;
      WorkUnit w;
      w.remaining = Duration::us(30);
      w.on_complete = [this] { ++units; };
      return w;
    }
    void on_bottom_handler_complete(const IrqEvent&) override {
      work_ready = true;
      hv->notify_work_available(self);  // fires mid-completion processing
    }
  } client;
  client.hv = &hv_;
  client.self = p0_;
  hv_.set_partition_client(p0_, &client);
  hv_.start();
  sim_.schedule_at(TimePoint::at_us(100), [&timer] { timer.program(Duration::zero()); });
  sim_.run_until(TimePoint::at_us(1000));
  // BH at [105,125); the follow-up unit runs [125,155) via the engine's own
  // dispatch, exactly once.
  EXPECT_EQ(client.units, 1u);
}

}  // namespace
}  // namespace rthv::hv
