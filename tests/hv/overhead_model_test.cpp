#include "hv/overhead_model.hpp"

#include <gtest/gtest.h>

namespace rthv::hv {
namespace {

using sim::Duration;

TEST(OverheadModelTest, PaperDefaultsOnPaperPlatform) {
  const hw::CpuModel cpu;        // 200 MHz
  const hw::MemorySystem mem;    // 5000 instr + 5000 cycles
  const OverheadModel oh(cpu, mem);
  EXPECT_EQ(oh.monitor_cost(), Duration::ns(640));              // 128 instr
  EXPECT_EQ(oh.sched_manipulation_cost(), Duration::ns(4385));  // 877 instr
  EXPECT_EQ(oh.context_switch_cost(), Duration::us(50));
  EXPECT_EQ(oh.tdma_tick_cost(), Duration::ns(500));            // 100 instr
}

TEST(OverheadModelTest, EffectiveBottomCostEq13) {
  const hw::CpuModel cpu;
  const hw::MemorySystem mem;
  const OverheadModel oh(cpu, mem);
  // C'_BH = C_BH + C_sched + 2*C_ctx = 40 + 4.385 + 100 us.
  EXPECT_EQ(oh.effective_bottom_cost(Duration::us(40)), Duration::ns(144'385));
}

TEST(OverheadModelTest, EffectiveTopCostEq15) {
  const hw::CpuModel cpu;
  const hw::MemorySystem mem;
  const OverheadModel oh(cpu, mem);
  EXPECT_EQ(oh.effective_top_cost(Duration::us(5)), Duration::ns(5'640));
}

TEST(OverheadModelTest, CustomBudgetsAndPlatform) {
  const hw::CpuModel cpu(100'000'000);  // 10 ns per cycle
  const hw::MemorySystem mem(1000, 500);
  OverheadConfig cfg;
  cfg.monitor_instructions = 50;
  cfg.sched_manipulation_instructions = 100;
  cfg.tdma_tick_instructions = 10;
  const OverheadModel oh(cpu, mem, cfg);
  EXPECT_EQ(oh.monitor_cost(), Duration::ns(500));
  EXPECT_EQ(oh.sched_manipulation_cost(), Duration::us(1));
  EXPECT_EQ(oh.tdma_tick_cost(), Duration::ns(100));
  EXPECT_EQ(oh.context_switch_cost(), Duration::us(10) + Duration::us(5));
  EXPECT_EQ(oh.raw_context_switch_cost().invalidate_instructions, 1000u);
  EXPECT_EQ(oh.raw_context_switch_cost().writeback_cycles, 500u);
}

TEST(OverheadModelTest, ConfigAccessor) {
  const hw::CpuModel cpu;
  const hw::MemorySystem mem;
  const OverheadModel oh(cpu, mem);
  EXPECT_EQ(oh.config().monitor_instructions, 128u);
  EXPECT_EQ(oh.config().sched_manipulation_instructions, 877u);
}

}  // namespace
}  // namespace rthv::hv
