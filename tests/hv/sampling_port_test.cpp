#include "hv/sampling_port.hpp"

#include <gtest/gtest.h>

#include "hv/hypervisor.hpp"
#include "hw/platform.hpp"
#include "sim/simulator.hpp"

namespace rthv::hv {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(SamplingPortBusTest, UnwrittenPortReadsEmpty) {
  SamplingPortBus bus;
  const auto port = bus.create_port("adc", Duration::ms(10));
  EXPECT_FALSE(bus.read(port, TimePoint::at_us(5)).has_value());
  EXPECT_EQ(bus.reads(port), 1u);
  EXPECT_EQ(bus.port_name(port), "adc");
}

TEST(SamplingPortBusTest, WriteOverwritesAndReadDoesNotConsume) {
  SamplingPortBus bus;
  const auto port = bus.create_port("adc", Duration::ms(10));
  bus.write(port, 1, 100, TimePoint::at_us(10));
  bus.write(port, 2, 200, TimePoint::at_us(20));
  const auto a = bus.read(port, TimePoint::at_us(30));
  const auto b = bus.read(port, TimePoint::at_us(40));
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->payload, 200u);
  EXPECT_EQ(a->writer, 2u);
  EXPECT_EQ(b->payload, 200u);  // unchanged: reads don't consume
  EXPECT_EQ(bus.writes(port), 2u);
  EXPECT_EQ(bus.reads(port), 2u);
}

TEST(SamplingPortBusTest, FreshnessFollowsRefreshPeriod) {
  SamplingPortBus bus;
  const auto port = bus.create_port("gyro", Duration::ms(5));
  bus.write(port, 0, 7, TimePoint::at_us(1000));
  EXPECT_TRUE(bus.read(port, TimePoint::at_us(6000))->fresh);   // age exactly 5ms
  EXPECT_FALSE(bus.read(port, TimePoint::at_us(6001))->fresh);  // stale
  // A new write refreshes.
  bus.write(port, 0, 8, TimePoint::at_us(7000));
  EXPECT_TRUE(bus.read(port, TimePoint::at_us(7001))->fresh);
}

TEST(SamplingPortBusTest, PortsAreIndependent) {
  SamplingPortBus bus;
  const auto a = bus.create_port("a", Duration::ms(1));
  const auto b = bus.create_port("b", Duration::ms(1));
  bus.write(a, 0, 1, TimePoint::at_us(0));
  EXPECT_TRUE(bus.read(a, TimePoint::at_us(1)).has_value());
  EXPECT_FALSE(bus.read(b, TimePoint::at_us(1)).has_value());
}

TEST(SamplingPortHypercallTest, WriterPartitionStampedThroughHypervisor) {
  sim::Simulator sim;
  hw::PlatformConfig pc;
  pc.ctx_invalidate_instructions = 1000;
  pc.ctx_writeback_cycles = 1000;
  hw::Platform platform(sim, pc);
  Hypervisor hv(platform);
  const auto p0 = hv.add_partition("writer");
  const auto p1 = hv.add_partition("reader");
  hv.set_schedule({{p0, Duration::us(1000)}, {p1, Duration::us(1000)}});
  const auto port = hv.create_sampling_port("sensor", Duration::ms(3));

  // Writer publishes once per work unit; reader samples and records
  // freshness.
  struct Writer : PartitionClient {
    Hypervisor* hv;
    PortId port;
    std::uint64_t value = 0;
    std::optional<WorkUnit> next_work(TimePoint) override {
      WorkUnit w;
      w.remaining = Duration::us(300);
      w.on_complete = [this] { hv->port_write(port, ++value); };
      return w;
    }
  } writer;
  writer.hv = &hv;
  writer.port = port;
  struct Reader : PartitionClient {
    Hypervisor* hv;
    PortId port;
    std::uint64_t fresh_reads = 0;
    std::uint64_t stale_reads = 0;
    std::uint64_t last_seen = 0;
    std::optional<WorkUnit> next_work(TimePoint) override {
      WorkUnit w;
      w.remaining = Duration::us(500);
      w.on_complete = [this] {
        if (const auto s = hv->port_read(port)) {
          (s->fresh ? fresh_reads : stale_reads)++;
          EXPECT_GE(s->payload, last_seen);  // monotone writer
          last_seen = s->payload;
          EXPECT_EQ(s->writer, 0u);
        }
      };
      return w;
    }
  } reader;
  reader.hv = &hv;
  reader.port = port;
  hv.set_partition_client(p0, &writer);
  hv.set_partition_client(p1, &reader);
  hv.start();
  sim.run_until(TimePoint::at_us(8000));

  EXPECT_GT(writer.value, 5u);
  // The writer refreshes every cycle (2ms) within the 3ms period: all fresh.
  EXPECT_GT(reader.fresh_reads, 3u);
  EXPECT_EQ(reader.stale_reads, 0u);
}

}  // namespace
}  // namespace rthv::hv
