// Coverage-guided adversarial campaign tests (src/fault/hunt.hpp).
//
// Three guarantees are pinned here:
//  1. Falsifiability: against a weakened monitor (d_min/2 test hook) the
//     hunt finds an Eq. 14 oracle violation within a bounded budget, and
//     the minimized reproducer replays standalone -- fresh system, no
//     snapshot -- to the identical verdict.
//  2. Determinism: a hunt is a pure function of (config, seed); coverage
//     map, findings and reproducers are bit-identical for any --jobs value.
//  3. Guidance pays: the violating band (admitted gaps between the
//     weakened and the configured d_min) is only reachable by compounding
//     mutations from a count-1 seed flood, so corpus retention beats the
//     PR 4-style random campaign by >= 10x in simulated events.
#include "fault/hunt.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/hypervisor_system.hpp"
#include "fault/fault_engine.hpp"
#include "fault/fault_plan.hpp"

namespace rthv::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

core::SystemConfig monitored_baseline() {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = Duration::us(1444);
  return cfg;
}

/// The pinned scenario: weakened monitor admits gaps down to 722us while
/// the oracle holds the configured 1444us, and the seed corpus is a SINGLE
/// raise at 3x d_min. No single mutation can produce two admitted raises
/// spaced inside (722us, 1444us) -- the start jitter (+-500us) stays below
/// the weakened d_min and one distance shrink from 4332us stays above the
/// configured one -- so reaching the band requires compounding mutations
/// retained through the corpus.
HuntConfig scenario(std::uint32_t jobs, bool guided, std::uint32_t generations,
                    std::int64_t weaken_divisor = 2,
                    std::uint64_t seed_count = 1) {
  HuntConfig cfg;
  cfg.make_system = [weaken_divisor] {
    auto system = std::make_unique<core::HypervisorSystem>(monitored_baseline());
    weaken_monitor_for_test(*system, 0, weaken_divisor);
    system->enable_tracing();
    return system;
  };
  InjectionSpec spec;
  spec.kind = FaultKind::kFlood;
  spec.source = 0;
  spec.start = TimePoint::at_us(12'000);
  spec.count = seed_count;
  spec.distance = Duration::us(4332);
  FaultPlan plan;
  plan.injections.push_back(spec);
  plan.horizon = Duration::ms(100);
  cfg.corpus.push_back(plan);
  cfg.fork.kind = HuntForkPoint::Kind::kTime;
  cfg.fork.time = TimePoint::at_us(10'000);
  cfg.horizon = Duration::ms(100);
  cfg.seed = 7;
  cfg.population = 8;
  cfg.generations = generations;
  cfg.jobs = jobs;
  cfg.coverage_guided = guided;
  return cfg;
}

std::string plan_text(const FaultPlan& plan) {
  std::ostringstream out;
  save_fault_plan(out, plan);
  return out.str();
}

std::string report_text(const OracleReport& report) {
  std::ostringstream out;
  report.write(out);
  return out.str();
}

/// The guided hunt is re-used by several tests; run it once per process.
const HuntResult& guided_result() {
  static const HuntResult result = run_hunt(scenario(1, /*guided=*/true, 30));
  return result;
}

TEST(HuntTest, FindsWeakenedMonitorViolationWithinBudget) {
  const auto& result = guided_result();
  ASSERT_TRUE(result.found) << "30 generations x 8 candidates must suffice";
  EXPECT_FALSE(result.report.ok());
  EXPECT_GT(result.report.violations.size(), 0u);
  EXPECT_GT(result.report.worst_ratio, 1.0);
  EXPECT_GT(result.sim_events_at_find, 0u);
  EXPECT_LE(result.sim_events_at_find, result.sim_events);
  // Minimization keeps only what the violation needs, and nothing may be
  // scheduled into the already-executed prefix.
  ASSERT_FALSE(result.reproducer.plan.injections.empty());
  for (const auto& spec : result.reproducer.plan.injections) {
    EXPECT_GE(spec.start, TimePoint::at_us(10'000));
  }
}

TEST(HuntTest, ReproducerReplaysStandaloneToTheSameVerdict) {
  const auto& result = guided_result();
  ASSERT_TRUE(result.found);
  const auto cfg = scenario(1, /*guided=*/true, 30);
  const auto replay = replay_reproducer(cfg, result.reproducer);
  EXPECT_FALSE(replay.ok())
      << "a finding that only exists under snapshot/restore is a bug";
  EXPECT_EQ(report_text(replay), report_text(result.report))
      << "standalone replay must reproduce the identical violation";
}

TEST(HuntTest, HuntIsJobCountIndependent) {
  const auto sequential = run_hunt(scenario(1, /*guided=*/true, 12));
  const auto parallel = run_hunt(scenario(4, /*guided=*/true, 12));

  EXPECT_EQ(sequential.found, parallel.found);
  EXPECT_EQ(sequential.evaluations, parallel.evaluations);
  EXPECT_EQ(sequential.sim_events, parallel.sim_events);
  EXPECT_EQ(sequential.generations_run, parallel.generations_run);
  EXPECT_EQ(sequential.corpus_size, parallel.corpus_size);
  EXPECT_EQ(sequential.coverage.to_hex(), parallel.coverage.to_hex())
      << "coverage maps must be bit-identical for any job count";
  if (sequential.found) {
    EXPECT_EQ(sequential.reproducer.global_index, parallel.reproducer.global_index);
    EXPECT_EQ(sequential.reproducer.engine_seed, parallel.reproducer.engine_seed);
    EXPECT_EQ(plan_text(sequential.reproducer.plan),
              plan_text(parallel.reproducer.plan));
    EXPECT_EQ(report_text(sequential.report), report_text(parallel.report));
  }
}

TEST(HuntTest, CoverageGuidanceBeatsRandomCampaignTenfold) {
  const auto& guided = guided_result();
  ASSERT_TRUE(guided.found);

  // The PR 4-style baseline: same mutators, same budget accounting, but the
  // corpus never grows -- every candidate is one mutation from the seed.
  auto random_cfg = scenario(1, /*guided=*/false, 2000);
  random_cfg.event_budget = 10 * guided.sim_events_at_find;
  const auto random = run_hunt(random_cfg);

  EXPECT_TRUE(!random.found ||
              random.sim_events_at_find >= 10 * guided.sim_events_at_find)
      << "random campaign found the violation after "
      << random.sim_events_at_find << " events; guided needed "
      << guided.sim_events_at_find;
}

TEST(HuntTest, QuarterDminWeakeningFallsWithinTenGenerations) {
  // The ISSUE-pinned falsifiability budget: against d_min/4 the admitted
  // band is wide open (361us..1444us gaps all violate), so ten generations
  // from a 16-raise seed flood must find it -- and the reproducer must
  // carry the violation out of the snapshot sandbox.
  const auto cfg = scenario(1, /*guided=*/true, 10, /*weaken_divisor=*/4,
                            /*seed_count=*/16);
  const auto result = run_hunt(cfg);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.report.ok());
  const auto replay = replay_reproducer(cfg, result.reproducer);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(report_text(replay), report_text(result.report));
}

TEST(HuntTest, SlotBoundaryForkRunsThePrefixOnce) {
  auto cfg = scenario(1, /*guided=*/true, 1);
  cfg.population = 2;
  cfg.fork.kind = HuntForkPoint::Kind::kSlotBoundary;
  cfg.fork.boundary = 2;
  const auto result = run_hunt(cfg);
  EXPECT_GT(result.events_to_fork, 0u)
      << "the prefix up to the second TDMA switch costs events exactly once";
  EXPECT_EQ(result.evaluations, 2u);
}

TEST(HuntTest, RejectsUnusableConfigs) {
  HuntConfig cfg;  // no make_system, empty corpus, zero horizon
  EXPECT_THROW((void)run_hunt(cfg), std::invalid_argument);
  auto no_corpus = scenario(1, true, 1);
  no_corpus.corpus.clear();
  EXPECT_THROW((void)run_hunt(no_corpus), std::invalid_argument);
}

}  // namespace
}  // namespace rthv::fault
