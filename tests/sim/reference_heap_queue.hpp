// Reference model for the timer-wheel differential test.
//
// This is the project's original pending-event set -- a single contiguous
// indexed binary min-heap ordered by (time, sequence number) -- preserved
// verbatim (namespace aside) when src/sim/event_queue.hpp was rewritten as
// a hierarchical timer wheel. The heap's pop order is the specification:
// strictly (time, seq), FIFO among equal times. The differential test
// drives both implementations with identical random operation streams and
// asserts identical observable behavior at every step.
//
// Test-only code: not built into any library, never included from src/.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/small_callback.hpp"
#include "sim/time.hpp"

namespace rthv::sim::reference {

/// Opaque handle identifying a scheduled event; usable to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return raw_ != 0; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint32_t slot, std::uint32_t generation)
      : raw_((static_cast<std::uint64_t>(generation) << 32) |
             static_cast<std::uint64_t>(slot)) {}
  [[nodiscard]] constexpr std::uint32_t slot() const {
    return static_cast<std::uint32_t>(raw_ & 0xffff'ffffULL);
  }
  [[nodiscard]] constexpr std::uint32_t generation() const {
    return static_cast<std::uint32_t>(raw_ >> 32);
  }
  std::uint64_t raw_ = 0;  // 0 == invalid / never scheduled (generations start at 1)
};

/// Time-ordered queue of one-shot callbacks (indexed binary min-heap).
class EventQueue {
 public:
  using Callback = SmallCallback;

  /// Schedules `fn` to run at absolute time `t`. Events with equal time run
  /// in scheduling order.
  template <typename F>
  EventId schedule(TimePoint t, F&& fn) {
    const std::uint32_t s = acquire_slot();
    Slot& slot = slots_[s];
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
      slot.callback = std::forward<F>(fn);
    } else {
      slot.callback.emplace(std::forward<F>(fn));
    }
    if (size_ == heap_cap_) grow_heap(size_ + 1);
    const std::size_t pos = size_++;
    heap_[pos] = HeapEntry{t, next_seq_++, s};
    sift_up(pos);  // final place() records heap_pos
    return EventId{s, slot.generation};
  }

  /// Cancels a previously scheduled event. Returns true if the event was
  /// still pending (i.e. it will now never run).
  bool cancel(EventId id) {
    if (!id.valid()) return false;
    const std::uint32_t s = id.slot();
    if (s >= slots_.size()) return false;
    Slot& slot = slots_[s];
    if (slot.generation != id.generation()) {
      return false;  // already ran or cancelled (release bumped the generation)
    }
    remove_heap_entry(slot.heap_pos);
    release_slot(s);
    return true;
  }

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Time of the earliest live event. Must not be called on an empty queue.
  [[nodiscard]] TimePoint next_time() const {
    assert(size_ > 0 && "next_time() on empty EventQueue");
    return heap_[0].time;
  }

  /// Removes and returns the earliest live event. Must not be called on an
  /// empty queue.
  struct Popped {
    TimePoint time;
    Callback callback;
  };
  Popped pop() {
    assert(size_ > 0 && "pop() on empty EventQueue");
    const HeapEntry top = heap_[0];
    Popped out{top.time, std::move(slots_[top.slot].callback)};
    remove_heap_entry(0);
    release_slot(top.slot);
    return out;
  }

  /// Pre-sizes the heap and slot table for `n` concurrently pending events.
  void reserve(std::size_t n) {
    if (n > heap_cap_) grow_heap(n);
    slots_.reserve(n);
  }

  [[nodiscard]] std::size_t allocated_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNpos = 0xffff'ffffU;

  // Trivially copyable; sift operations move these, never the callbacks.
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct Slot {
    Callback callback;
    std::uint32_t generation = 1;
    std::uint32_t heap_pos = kNpos;  // valid whenever the slot is live
    std::uint32_t next_free = kNpos;
  };

  static bool entry_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void place(std::size_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    slots_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
  }

  void sift_up(std::size_t pos) {
    const HeapEntry moving = heap_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (!entry_before(moving, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, moving);
  }

  void sift_down(std::size_t pos) {
    const HeapEntry moving = heap_[pos];
    const std::size_t n = size_;
    while (true) {
      std::size_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && entry_before(heap_[child + 1], heap_[child])) ++child;
      if (!entry_before(heap_[child], moving)) break;
      place(pos, heap_[child]);
      pos = child;
    }
    place(pos, moving);
  }

  /// Removes heap_[pos], restoring the heap invariant (swap-with-last).
  void remove_heap_entry(std::size_t pos) {
    const std::size_t last = --size_;
    if (pos == last) return;
    const HeapEntry displaced = heap_[last];
    place(pos, displaced);
    if (pos > 0 && entry_before(displaced, heap_[(pos - 1) / 2])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNpos) {
      const std::uint32_t s = free_head_;
      free_head_ = slots_[s].next_free;
      return s;
    }
    assert(slots_.size() < kNpos && "EventQueue slot table full");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t s) {
    Slot& slot = slots_[s];
    slot.callback.reset();
    if (++slot.generation == 0) slot.generation = 1;  // keep ids nonzero on wrap
    slot.next_free = free_head_;
    free_head_ = s;
  }

  // Grows the entry buffer (cold path; entries are trivially copyable).
  void grow_heap(std::size_t min_cap) {
    std::size_t cap = heap_cap_ == 0 ? 64 : heap_cap_ * 2;
    if (cap < min_cap) cap = min_cap;
    std::unique_ptr<HeapEntry[]> bigger(new HeapEntry[cap]);
    if (size_ > 0) std::memcpy(bigger.get(), heap_.get(), size_ * sizeof(HeapEntry));
    heap_ = std::move(bigger);
    heap_cap_ = cap;
  }

  std::unique_ptr<HeapEntry[]> heap_;
  std::size_t heap_cap_ = 0;
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rthv::sim::reference
