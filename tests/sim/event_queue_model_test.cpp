// Randomized differential test of EventQueue against a simple reference
// model (std::multimap): arbitrary interleavings of schedule / cancel / pop
// must produce identical observable behaviour.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace rthv::sim {
namespace {

class EventQueueModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModelTest, MatchesReferenceModel) {
  Xoshiro256 rng(GetParam());
  EventQueue queue;
  // Reference: ordered by (time, insertion seq); value = payload id.
  std::multimap<std::pair<std::int64_t, std::uint64_t>, int> model;
  std::vector<std::pair<EventId, std::pair<std::int64_t, std::uint64_t>>> live;
  std::uint64_t seq = 0;
  int last_payload = -1;

  for (int step = 0; step < 4000; ++step) {
    const double op = rng.uniform01();
    if (op < 0.5 || queue.empty()) {
      // schedule
      const auto t = static_cast<std::int64_t>(rng.uniform_int(0, 1000));
      const int payload = step;
      const EventId id =
          queue.schedule(TimePoint::at_ns(t), [&last_payload, payload] {
            last_payload = payload;
          });
      model.emplace(std::make_pair(t, seq), payload);
      live.emplace_back(id, std::make_pair(t, seq));
      ++seq;
    } else if (op < 0.7 && !live.empty()) {
      // cancel a random live entry (may already have been popped)
      const auto idx = rng.uniform_int(0, live.size() - 1);
      const auto [id, key] = live[idx];
      const bool was_live = model.erase(key) > 0;
      EXPECT_EQ(queue.cancel(id), was_live);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      // pop
      ASSERT_FALSE(model.empty());
      const auto expected = model.begin();
      EXPECT_EQ(queue.next_time(), TimePoint::at_ns(expected->first.first));
      auto popped = queue.pop();
      EXPECT_EQ(popped.time, TimePoint::at_ns(expected->first.first));
      popped.callback();
      EXPECT_EQ(last_payload, expected->second);
      model.erase(expected);
    }
    ASSERT_EQ(queue.size(), model.size());
    ASSERT_EQ(queue.empty(), model.empty());
  }
  // Drain both and compare the full remaining order.
  while (!model.empty()) {
    const auto expected = model.begin();
    auto popped = queue.pop();
    EXPECT_EQ(popped.time, TimePoint::at_ns(expected->first.first));
    popped.callback();
    EXPECT_EQ(last_payload, expected->second);
    model.erase(expected);
  }
  EXPECT_TRUE(queue.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rthv::sim
