#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rthv::sim {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Test, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256Test, Uniform01OpenLowNeverZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.uniform01_open_low(), 0.0);
    EXPECT_LE(rng.uniform01_open_low(), 1.0);
  }
}

TEST(Xoshiro256Test, UniformIntStaysInBoundsAndHitsEndpoints) {
  Xoshiro256 rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    hit_lo |= (v == 3);
    hit_hi |= (v == 7);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Xoshiro256Test, UniformIntSingleValue) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Xoshiro256Test, UniformRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_range(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

class ExponentialMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMeanTest, SampleMeanConvergesToParameter) {
  const double mean = GetParam();
  Xoshiro256 rng(17);
  constexpr int kN = 200000;
  double acc = 0;
  for (int i = 0; i < kN; ++i) acc += rng.exponential(mean);
  const double sample_mean = acc / kN;
  EXPECT_NEAR(sample_mean, mean, mean * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMeanTest,
                         ::testing::Values(1.0, 100.0, 1443.85, 1e6));

TEST(Xoshiro256Test, ExponentialIsNonNegative) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(5.0), 0.0);
}

TEST(Xoshiro256Test, NormalMoments) {
  Xoshiro256 rng(29);
  constexpr int kN = 200000;
  double acc = 0, acc2 = 0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(10.0, 3.0);
    acc += v;
    acc2 += v * v;
  }
  const double m = acc / kN;
  const double var = acc2 / kN - m * m;
  EXPECT_NEAR(m, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

}  // namespace
}  // namespace rthv::sim
