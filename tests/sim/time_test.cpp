#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rthv::sim {
namespace {

using namespace rthv::sim::literals;

TEST(DurationTest, DefaultIsZero) {
  Duration d;
  EXPECT_TRUE(d.is_zero());
  EXPECT_EQ(d.count_ns(), 0);
}

TEST(DurationTest, NamedConstructorsScaleCorrectly) {
  EXPECT_EQ(Duration::ns(7).count_ns(), 7);
  EXPECT_EQ(Duration::us(7).count_ns(), 7'000);
  EXPECT_EQ(Duration::ms(7).count_ns(), 7'000'000);
  EXPECT_EQ(Duration::s(7).count_ns(), 7'000'000'000);
}

TEST(DurationTest, LiteralsMatchNamedConstructors) {
  EXPECT_EQ(3_ns, Duration::ns(3));
  EXPECT_EQ(3_us, Duration::us(3));
  EXPECT_EQ(3_ms, Duration::ms(3));
  EXPECT_EQ(3_s, Duration::s(3));
}

TEST(DurationTest, FromFractionalMicrosecondsRounds) {
  EXPECT_EQ(Duration::from_us_f(1.5).count_ns(), 1500);
  EXPECT_EQ(Duration::from_us_f(0.0004).count_ns(), 0);  // below 1 ns rounds down
  EXPECT_EQ(Duration::from_us_f(0.0006).count_ns(), 1);
}

TEST(DurationTest, ArithmeticOperators) {
  EXPECT_EQ(2_us + 3_us, 5_us);
  EXPECT_EQ(5_us - 3_us, 2_us);
  EXPECT_EQ(2_us * 3, 6_us);
  EXPECT_EQ(3 * 2_us, 6_us);
  EXPECT_EQ(-(2_us), Duration::us(-2));
  Duration d = 1_us;
  d += 1_us;
  d -= 500_ns;
  EXPECT_EQ(d, 1500_ns);
}

TEST(DurationTest, DivisionAndModulo) {
  EXPECT_EQ(10_us / (3_us), 3);
  EXPECT_EQ(10_us % (3_us), 1_us);
}

TEST(DurationTest, CeilDiv) {
  EXPECT_EQ(Duration::ceil_div(10_us, 3_us), 4);
  EXPECT_EQ(Duration::ceil_div(9_us, 3_us), 3);
  EXPECT_EQ(Duration::ceil_div(1_ns, 3_us), 1);
}

TEST(DurationTest, SignPredicates) {
  EXPECT_TRUE((1_ns).is_positive());
  EXPECT_FALSE((1_ns).is_negative());
  EXPECT_TRUE((0_ns - 1_ns).is_negative());
  EXPECT_TRUE(Duration::zero().is_zero());
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_GE(2_us, 2_us);
  EXPECT_EQ(Duration::max().count_ns(), INT64_MAX);
}

TEST(DurationTest, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ((1500_ns).as_us(), 1.5);
  EXPECT_DOUBLE_EQ((2'500'000_ns).as_ms(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::s(3).as_s(), 3.0);
}

TEST(DurationTest, StreamFormat) {
  std::ostringstream os;
  os << 1500_ns;
  EXPECT_EQ(os.str(), "1.5us");
  EXPECT_EQ((42_us).to_string(), "42us");
}

TEST(TimePointTest, OriginAndOffsets) {
  const TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(t0.count_ns(), 0);
  const TimePoint t1 = t0 + 5_us;
  EXPECT_EQ(t1.count_ns(), 5000);
  EXPECT_EQ(t1 - t0, 5_us);
  EXPECT_EQ(t1 - 2_us, TimePoint::at_us(3));
}

TEST(TimePointTest, AtConstructors) {
  EXPECT_EQ(TimePoint::at_ns(1500).count_ns(), 1500);
  EXPECT_EQ(TimePoint::at_us(2).count_ns(), 2000);
  EXPECT_DOUBLE_EQ(TimePoint::at_ns(1500).as_us(), 1.5);
}

TEST(TimePointTest, CompoundAdd) {
  TimePoint t = TimePoint::origin();
  t += 7_us;
  EXPECT_EQ(t, TimePoint::at_us(7));
}

TEST(TimePointTest, Ordering) {
  EXPECT_LT(TimePoint::at_us(1), TimePoint::at_us(2));
  EXPECT_EQ(TimePoint::max().count_ns(), INT64_MAX);
}

TEST(TimePointTest, DifferenceCanBeNegative) {
  EXPECT_EQ(TimePoint::at_us(1) - TimePoint::at_us(3), Duration::us(-2));
}

}  // namespace
}  // namespace rthv::sim
