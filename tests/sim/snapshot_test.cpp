// Differential snapshot/restore tests for the simulator core.
//
// The contract under test (Simulator::snapshot/restore, backed by
// EventQueue::Snapshot): a snapshot taken at any instant, restored onto the
// SAME simulator object, replays the remaining schedule bit-identically --
// same firing times, same FIFO order among equal times, same IDs honoured
// by cancel(). The randomized differential drives events through every
// queue tier (sparse due list, all wheel levels, the far-future heap) and
// across the top-level 2^36-tick window boundary where far-heap refills
// kick in.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"

namespace rthv::sim {
namespace {

// One observed callback firing: virtual time plus the event's identity
// marker. Bit-identical replay means bit-identical logs.
struct Fired {
  std::int64_t ns;
  std::uint64_t marker;
  bool operator==(const Fired&) const = default;
};

// The wheels cover 2^36 ticks of 2^13 ns = 2^49 ns past the frontier;
// anything scheduled beyond that from t=0 lands in the far heap.
constexpr std::int64_t kWheelSpanNs = std::int64_t{1} << 49;

/// Schedules a randomized event population across all queue tiers and
/// returns the ids. Every callback appends (now, marker) to `log`; every
/// fourth one also chains a follow-up event (exercises scheduling from
/// inside a restored callback clone).
std::vector<EventId> populate(Simulator& s, std::vector<Fired>& log,
                              Xoshiro256& rng, std::size_t count) {
  std::vector<EventId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t marker = rng.next();
    TimePoint t;
    switch (i % 4) {
      case 0:  // near: level-0 buckets / sparse due list
        t = TimePoint::at_us(
            static_cast<std::int64_t>(rng.uniform_int(1, 2'000)));
        break;
      case 1:  // mid: upper wheel levels (milliseconds to minutes)
        t = TimePoint::at_us(
            static_cast<std::int64_t>(rng.uniform_int(2'000, 60'000'000)));
        break;
      case 2:  // far: beyond the wheels' 2^49 ns span
        t = TimePoint::at_ns(
            kWheelSpanNs +
            static_cast<std::int64_t>(rng.uniform_int(0, std::uint64_t{1} << 48)));
        break;
      default: {  // near, and chains a follow-up when it fires
        t = TimePoint::at_us(
            static_cast<std::int64_t>(rng.uniform_int(1, 2'000)));
        const auto delay = Duration::us(
            static_cast<std::int64_t>(rng.uniform_int(1, 500)));
        ids.push_back(s.schedule_at(t, [&s, &log, marker, delay] {
          log.push_back({s.now().count_ns(), marker});
          s.schedule_after(delay, [&s, &log, marker] {
            log.push_back({s.now().count_ns(), ~marker});
          });
        }));
        continue;
      }
    }
    ids.push_back(s.schedule_at(
        t, [&s, &log, marker] { log.push_back({s.now().count_ns(), marker}); }));
  }
  return ids;
}

/// The core differential: populate, run partway, snapshot, finish recording
/// a reference log, then restore and finish twice more. All three suffix
/// logs must be bit-identical, and clocks/counters must round-trip.
void run_differential(std::uint64_t seed) {
  Simulator s;
  std::vector<Fired> log;
  Xoshiro256 rng(seed);
  auto ids = populate(s, log, rng, 120);

  // Cancel a random subset before the split so freelist state is non-trivial.
  for (const auto& id : ids) {
    if (rng.uniform_int(0, 9) == 0) s.cancel(id);
  }

  // Snapshot at a seed-dependent arbitrary instant mid-run.
  s.run_until(TimePoint::at_us(
      static_cast<std::int64_t>(rng.uniform_int(100, 5'000))));
  const auto snap = s.snapshot();
  const auto now_at_snap = s.now();
  const auto executed_at_snap = s.executed_events();
  const auto pending_at_snap = s.pending_events();

  log.clear();
  s.run();
  const std::vector<Fired> reference = log;
  const auto end_clock = s.now();
  const auto end_executed = s.executed_events();

  for (int round = 0; round < 2; ++round) {
    s.restore(snap);
    EXPECT_EQ(s.now(), now_at_snap);
    EXPECT_EQ(s.executed_events(), executed_at_snap);
    EXPECT_EQ(s.pending_events(), pending_at_snap);
    log.clear();
    s.run();
    EXPECT_EQ(log, reference) << "seed " << seed << " round " << round
                              << ": replay diverged from the first run";
    EXPECT_EQ(s.now(), end_clock);
    EXPECT_EQ(s.executed_events(), end_executed);
  }
}

TEST(SimulatorSnapshotTest, RandomizedDifferentialAcrossAllTiers) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) run_differential(seed);
}

TEST(SimulatorSnapshotTest, RoundTripAcrossTopLevelWindowBoundary) {
  // Events straddling the frontier's aligned 2^36-tick window: the ones
  // beyond it sit in the far heap at snapshot time and must be refilled
  // into the wheels identically on every replay.
  Simulator s;
  std::vector<Fired> log;
  const std::int64_t boundary = kWheelSpanNs;
  const std::array<std::int64_t, 6> times = {
      boundary - 10'000'000, boundary - 8'192,     boundary,
      boundary + 8'192,      boundary + 10'000'000, 2 * boundary + 12'345,
  };
  std::uint64_t marker = 0;
  for (const auto t : times) {
    ++marker;
    s.schedule_at(TimePoint::at_ns(t), [&s, &log, marker] {
      log.push_back({s.now().count_ns(), marker});
    });
  }

  // Snapshot while the frontier is still far below the boundary.
  s.run_until(TimePoint::at_us(100));
  const auto snap = s.snapshot();

  log.clear();
  s.run();
  const std::vector<Fired> reference = log;
  ASSERT_EQ(reference.size(), times.size());

  s.restore(snap);
  log.clear();
  s.run();
  EXPECT_EQ(log, reference);
}

TEST(SimulatorSnapshotTest, CancelStaysValidAfterRestore) {
  // EventIds from before the snapshot keep working after a restore: the
  // node generations round-trip, so a cancel lands on the same event.
  Simulator s;
  bool fired = false;
  const auto id =
      s.schedule_at(TimePoint::at_us(10), [&fired] { fired = true; });
  const auto snap = s.snapshot();

  ASSERT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);

  s.restore(snap);
  s.run();
  EXPECT_TRUE(fired) << "restore must revive the cancelled event";

  fired = false;
  s.restore(snap);
  EXPECT_TRUE(s.cancel(id)) << "the id must target the restored event again";
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorSnapshotTest, HeapStoredCallbacksAreClonedNotAliased) {
  // A capture larger than the inline buffer forces heap storage; the
  // snapshot must deep-copy it so running the original does not corrupt
  // the saved copy.
  Simulator s;
  std::array<std::uint64_t, 16> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 7 + 1;
  std::vector<std::uint64_t> sums;
  s.schedule_at(TimePoint::at_us(5), [payload, &sums] {
    std::uint64_t sum = 0;
    for (const auto v : payload) sum += v;
    sums.push_back(sum);
  });

  const auto snap = s.snapshot();
  s.run();
  s.restore(snap);
  s.run();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0], sums[1]);
}

TEST(SimulatorSnapshotTest, NonCopyableCallbackMakesSnapshotThrow) {
  // Move-only callables schedule fine but cannot be checkpointed; the
  // failure must be a loud logic_error at snapshot time, not a silent
  // shallow copy.
  Simulator s;
  auto owned = std::make_unique<int>(42);
  s.schedule_at(TimePoint::at_us(1), [p = std::move(owned)] { (void)*p; });
  EXPECT_THROW((void)s.snapshot(), std::logic_error);
  s.run();  // still runnable: the queue itself is unharmed
  EXPECT_TRUE(s.idle());
}

TEST(SimulatorSnapshotTest, SnapshotOfRestoredStateIsEquivalent) {
  // snapshot -> restore -> snapshot must describe the same future:
  // replaying either snapshot yields the same log.
  Simulator s;
  std::vector<Fired> log;
  Xoshiro256 rng(99);
  populate(s, log, rng, 40);
  s.run_until(TimePoint::at_us(500));

  const auto first = s.snapshot();
  s.restore(first);
  const auto second = s.snapshot();

  s.restore(first);
  log.clear();
  s.run();
  const auto from_first = log;

  s.restore(second);
  log.clear();
  s.run();
  EXPECT_EQ(log, from_first);
}

}  // namespace
}  // namespace rthv::sim
