// Randomized differential test: the hierarchical timer wheel
// (src/sim/event_queue.hpp) against the original indexed binary min-heap it
// replaced (tests/sim/reference_heap_queue.hpp). Identical operation
// streams must produce identical observable behavior at every step -- pop
// order, next_time(), cancel results, and size().
//
// Deltas are drawn from four magnitude classes so the streams exercise
// every storage tier of the wheel: the sorted due list (sub-granule and
// past-frontier inserts), level-0 buckets, higher cascade levels, and the
// far-future heap beyond the wheels' 2^49 ns span.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "reference_heap_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace rthv::sim {
namespace {

class WheelVsHeapTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WheelVsHeapTest, IdenticalBehaviorUnderRandomOps) {
  Xoshiro256 rng(GetParam());
  EventQueue wheel;
  reference::EventQueue heap;
  struct LiveEntry {
    EventId wheel_id;
    reference::EventId heap_id;
  };
  std::vector<LiveEntry> live;
  std::int64_t now = 0;  // last popped time: deltas are relative to this
  int wheel_payload = -1;
  int heap_payload = -1;

  for (int step = 0; step < 6000; ++step) {
    const double op = rng.uniform01();
    if (op < 0.55 || wheel.empty()) {
      // Schedule with a delta spanning all wheel tiers. The occasional
      // behind-the-frontier insert (an event earlier than ones already
      // popped around it) lands in the due list on the wheel side.
      const double m = rng.uniform01();
      std::int64_t t;
      if (m < 0.10) {
        t = std::max<std::int64_t>(0, now - static_cast<std::int64_t>(
                                            rng.uniform_int(0, 20'000)));
      } else if (m < 0.50) {
        t = now + static_cast<std::int64_t>(rng.uniform_int(0, 20'000));
      } else if (m < 0.75) {
        t = now + static_cast<std::int64_t>(rng.uniform_int(0, 60'000'000));
      } else if (m < 0.88) {
        // Hours out: upper wheel levels, cascading on the way back down.
        t = now + static_cast<std::int64_t>(rng.uniform_int(0, 20'000'000'000'000));
      } else if (m < 0.92) {
        // Straddle the next aligned top-level window boundary (2^49 ns):
        // a random delta has ~2^-36 odds of hitting the last tick of a
        // window, so without this class the opened-bucket window crossing
        // (far-heap refill, invariant I4) would never be exercised.
        const std::int64_t window_ns = std::int64_t{1} << 49;
        const std::int64_t boundary = (now / window_ns + 1) * window_ns;
        t = boundary - 8'192 + static_cast<std::int64_t>(rng.uniform_int(0, 16'000));
      } else {
        // Weeks out: beyond the wheels' span, lands in the far heap.
        t = now + static_cast<std::int64_t>(rng.uniform_int(0, 2'000'000'000'000'000));
      }
      const int payload = step;
      const EventId wid = wheel.schedule(
          TimePoint::at_ns(t), [&wheel_payload, payload] { wheel_payload = payload; });
      const reference::EventId hid = heap.schedule(
          TimePoint::at_ns(t), [&heap_payload, payload] { heap_payload = payload; });
      live.push_back(LiveEntry{wid, hid});
    } else if (op < 0.75 && !live.empty()) {
      // Cancel a random remembered id (may already have popped: both sides
      // must then agree it is stale).
      const auto idx = rng.uniform_int(0, live.size() - 1);
      const LiveEntry e = live[idx];
      const bool wheel_cancelled = wheel.cancel(e.wheel_id);
      const bool heap_cancelled = heap.cancel(e.heap_id);
      ASSERT_EQ(wheel_cancelled, heap_cancelled);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      ASSERT_FALSE(heap.empty());
      ASSERT_EQ(wheel.next_time(), heap.next_time());
      auto from_wheel = wheel.pop();
      auto from_heap = heap.pop();
      ASSERT_EQ(from_wheel.time, from_heap.time);
      from_wheel.callback();
      from_heap.callback();
      ASSERT_EQ(wheel_payload, heap_payload);
      now = std::max(now, from_wheel.time.count_ns());
    }
    ASSERT_EQ(wheel.size(), heap.size());
    ASSERT_EQ(wheel.empty(), heap.empty());
  }

  // Drain both completely and compare the full remaining order.
  while (!heap.empty()) {
    ASSERT_EQ(wheel.next_time(), heap.next_time());
    auto from_wheel = wheel.pop();
    auto from_heap = heap.pop();
    ASSERT_EQ(from_wheel.time, from_heap.time);
    from_wheel.callback();
    from_heap.callback();
    ASSERT_EQ(wheel_payload, heap_payload);
  }
  EXPECT_TRUE(wheel.empty());
}

// Dense same-tick bursts: many events collapsing into few buckets must pop
// FIFO by scheduling order on both sides (the wheel sorts an opened bucket
// by the full (time, seq) key; time alone would interleave wrongly).
TEST_P(WheelVsHeapTest, SameTickBurstsPreserveFifo) {
  Xoshiro256 rng(GetParam() + 1000);
  EventQueue wheel;
  reference::EventQueue heap;
  int wheel_payload = -1;
  int heap_payload = -1;
  std::int64_t now = 0;
  for (int round = 0; round < 60; ++round) {
    // A burst of events over very few distinct times, far enough out that
    // they share wheel buckets.
    const std::int64_t base = now + static_cast<std::int64_t>(
                                        rng.uniform_int(0, 4'000'000));
    for (int i = 0; i < 40; ++i) {
      const std::int64_t t = base + static_cast<std::int64_t>(rng.uniform_int(0, 3)) * 8192;
      const int payload = round * 1000 + i;
      wheel.schedule(TimePoint::at_ns(t),
                     [&wheel_payload, payload] { wheel_payload = payload; });
      heap.schedule(TimePoint::at_ns(t),
                    [&heap_payload, payload] { heap_payload = payload; });
    }
    const auto drains = rng.uniform_int(10, 40);
    for (std::uint64_t i = 0; i < drains && !heap.empty(); ++i) {
      auto from_wheel = wheel.pop();
      auto from_heap = heap.pop();
      ASSERT_EQ(from_wheel.time, from_heap.time);
      from_wheel.callback();
      from_heap.callback();
      ASSERT_EQ(wheel_payload, heap_payload);
      now = std::max(now, from_wheel.time.count_ns());
    }
    ASSERT_EQ(wheel.size(), heap.size());
  }
  while (!heap.empty()) {
    auto from_wheel = wheel.pop();
    auto from_heap = heap.pop();
    ASSERT_EQ(from_wheel.time, from_heap.time);
    from_wheel.callback();
    from_heap.callback();
    ASSERT_EQ(wheel_payload, heap_payload);
  }
}

// Window-boundary walk. The interactive test above never carries `now`
// across an aligned top-level window boundary (2^49 ns): pops crawl through
// the ever-growing near population, and by the final drain no schedules are
// interleaved, so a missed far-heap refill at the crossing self-heals on
// the next advance(). This test drives the drain across four boundaries
// with near schedules interleaved mid-drain -- right after a crossing those
// land in the wheels ahead of any far event the crossing should have
// refilled (invariant I4, the open_bucket crossing regression), and the
// step-by-step comparison catches the inversion.
TEST_P(WheelVsHeapTest, WindowBoundaryWalkStaysIdentical) {
  Xoshiro256 rng(GetParam() + 2000);
  EventQueue wheel;
  reference::EventQueue heap;
  constexpr std::int64_t kWindowNs = std::int64_t{1} << 49;
  std::int64_t now = 0;
  int wheel_payload = -1;
  int heap_payload = -1;
  int payload = 0;
  const auto schedule_both = [&](std::int64_t t) {
    const int p = payload++;
    wheel.schedule(TimePoint::at_ns(t), [&wheel_payload, p] { wheel_payload = p; });
    heap.schedule(TimePoint::at_ns(t), [&heap_payload, p] { heap_payload = p; });
  };
  for (int window = 1; window <= 4; ++window) {
    const std::int64_t boundary = window * kWindowNs;
    // Filler spread over the rest of the current window, then events hugging
    // both sides of the boundary: the below-boundary ones share the last
    // tick of the window, so opening their bucket crosses it while the
    // above-boundary ones still sit in the far heap.
    for (int i = 0; i < 30; ++i) {
      schedule_both(now + 1 +
                    static_cast<std::int64_t>(rng.uniform_int(
                        0, static_cast<std::uint64_t>(boundary - now - 20'000))));
    }
    for (int i = 0; i < 30; ++i) {
      schedule_both(boundary - 8'192 +
                    static_cast<std::int64_t>(rng.uniform_int(0, 16'000)));
    }
    while (!heap.empty()) {
      ASSERT_FALSE(wheel.empty());
      ASSERT_EQ(wheel.next_time(), heap.next_time());
      auto from_wheel = wheel.pop();
      auto from_heap = heap.pop();
      ASSERT_EQ(from_wheel.time, from_heap.time);
      from_wheel.callback();
      from_heap.callback();
      ASSERT_EQ(wheel_payload, heap_payload);
      now = std::max(now, from_wheel.time.count_ns());
      // Sub-critical interleave (0.4 expected inserts per pop, so the drain
      // terminates); after the crossing these become the wheel events that
      // would overtake an unrefilled far event.
      if (rng.uniform01() < 0.4) {
        schedule_both(now + static_cast<std::int64_t>(rng.uniform_int(0, 20'000)));
      }
    }
    ASSERT_TRUE(wheel.empty());
    now = std::max(now, boundary + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WheelVsHeapTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rthv::sim
