#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rthv::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::at_us(3), [&] { order.push_back(3); });
  q.schedule(TimePoint::at_us(1), [&] { order.push_back(1); });
  q.schedule(TimePoint::at_us(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesPopFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint::at_us(10), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliestLive) {
  EventQueue q;
  q.schedule(TimePoint::at_us(5), [] {});
  q.schedule(TimePoint::at_us(2), [] {});
  EXPECT_EQ(q.next_time(), TimePoint::at_us(2));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(TimePoint::at_us(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint::at_us(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint::at_us(1), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueueTest, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint::at_us(1), [] {});
  q.schedule(TimePoint::at_us(9), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), TimePoint::at_us(9));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopReturnsTimeAndCallback) {
  EventQueue q;
  int hits = 0;
  q.schedule(TimePoint::at_us(4), [&] { ++hits; });
  auto popped = q.pop();
  EXPECT_EQ(popped.time, TimePoint::at_us(4));
  popped.callback();
  EXPECT_EQ(hits, 1);
}

// Satellite requirement: schedule-then-cancel of a million events with exact
// size() bookkeeping throughout, and eager reclamation -- cancelled slots are
// reused, so the slot table's high-water mark stays at the peak *live* count,
// not the total scheduled count.
TEST(EventQueueTest, MillionScheduleCancelExactBookkeeping) {
  constexpr std::size_t kTotal = 1'000'000;
  constexpr std::size_t kBatch = 1000;
  EventQueue q;
  std::vector<EventId> batch;
  batch.reserve(kBatch);
  std::int64_t t = 0;
  for (std::size_t round = 0; round < kTotal / kBatch; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      ASSERT_EQ(q.size(), i);
      batch.push_back(q.schedule(TimePoint::at_ns(++t), [] {}));
    }
    ASSERT_EQ(q.size(), kBatch);
    for (const EventId id : batch) ASSERT_TRUE(q.cancel(id));
    ASSERT_EQ(q.size(), 0u);
    ASSERT_TRUE(q.empty());
    batch.clear();
  }
  // One million events went through, but only kBatch were ever live at once:
  // eager reclamation must have capped the slot table at the live peak.
  EXPECT_LE(q.allocated_slots(), kBatch);
}

TEST(EventQueueTest, CancelledSlotIdsAreNotResurrectedByReuse) {
  EventQueue q;
  const EventId first = q.schedule(TimePoint::at_us(1), [] {});
  ASSERT_TRUE(q.cancel(first));
  // The reused slot gets a new generation; the stale id must stay dead.
  const EventId second = q.schedule(TimePoint::at_us(2), [] {});
  EXPECT_FALSE(q.cancel(first));
  EXPECT_TRUE(q.cancel(second));
  EXPECT_TRUE(q.empty());
}

// Equal-time events must pop in schedule order even when cancellations
// rearrange the heap in between (bit-reproducibility depends on this).
TEST(EventQueueTest, EqualTimeFifoSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 200; ++i) {
    const EventId id =
        q.schedule(TimePoint::at_us(500), [&order, i] { order.push_back(i); });
    if (i % 3 == 0) cancelled.push_back(id);
  }
  for (const EventId id : cancelled) ASSERT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().callback();
  int prev = -1;
  for (const int i : order) {
    EXPECT_NE(i % 3, 0);  // cancelled callbacks never run
    EXPECT_GT(i, prev);   // FIFO among the survivors
    prev = i;
  }
  EXPECT_EQ(order.size(), 200u - cancelled.size());
}

// Wheel-era regression: a million events cycled through every storage tier
// (due list, all wheel levels, far heap) with interleaved pops and cancels
// must keep the slot table bounded by the live peak -- reclamation has to
// work identically whether a slot dies in a bucket, the due list, or the
// far heap.
TEST(EventQueueTest, MillionEventReclamationAcrossHorizons) {
  constexpr std::size_t kRounds = 500;
  constexpr std::size_t kBatch = 2000;
  // Deltas per index class: sub-granule, level-0/1, mid-level, far-future
  // (the wheels span ~2^49 ns; 6e14 ns lies beyond them).
  constexpr std::int64_t kDeltas[4] = {1'000, 10'000'000, 1'000'000'000'000,
                                       600'000'000'000'000};
  EventQueue q;
  std::vector<EventId> ids;
  ids.reserve(kBatch);
  std::int64_t now = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      const std::int64_t t = now + kDeltas[i % 4] + static_cast<std::int64_t>(i);
      ids.push_back(q.schedule(TimePoint::at_ns(t), [] {}));
    }
    ASSERT_EQ(q.size(), kBatch);
    // Cancel one class in place (a quarter of the batch dies unreaped) and
    // pop the rest in order, so every surviving storage tier -- due list,
    // cascading mid levels, far heap -- is drained through advance().
    for (std::size_t i = 1; i < ids.size(); i += 4) ASSERT_TRUE(q.cancel(ids[i]));
    TimePoint last = TimePoint::at_ns(now);
    for (std::size_t i = 0; i < kBatch - kBatch / 4; ++i) {
      auto p = q.pop();
      ASSERT_GE(p.time, last);
      last = p.time;
    }
    ASSERT_TRUE(q.empty());
    now = last.count_ns();
    ids.clear();
  }
  EXPECT_LE(q.allocated_slots(), kBatch);
  const auto stats = q.stats();
  EXPECT_GT(stats.cascades, 0u);       // mid-level events cascaded down
  EXPECT_GT(stats.far_pulls, 0u);      // far events were refilled into wheels
  EXPECT_GT(stats.buckets_opened, 0u);
  EXPECT_EQ(stats.far_heap_size, 0u);  // fully drained
  EXPECT_GT(stats.far_heap_peak, 0u);
}

// Cancelling inside the far heap must reclaim eagerly and keep the heap's
// back-references intact; the stats gauges expose the population.
TEST(EventQueueTest, FarHeapCancelReclaimsEagerly) {
  EventQueue q;
  // Occupy the wheel first so the far events take the insert_tick path
  // (a sub-threshold pending set would park them in the sparse due list).
  std::vector<EventId> near;
  for (int i = 0; i < 40; ++i) {
    near.push_back(q.schedule(TimePoint::at_us(10 + i), [] {}));
  }
  std::vector<EventId> far;
  for (int i = 0; i < 100; ++i) {
    // Each beyond the wheels' span, spaced wider than the top-level window
    // so every refill pulls exactly one event.
    far.push_back(q.schedule(
        TimePoint::at_ns(600'000'000'000'000 +
                         static_cast<std::int64_t>(i) * 1'000'000'000'000'000),
        [] {}));
  }
  EXPECT_EQ(q.stats().far_heap_size, 100u);
  EXPECT_GE(q.stats().far_heap_peak, 100u);
  for (std::size_t i = 0; i < far.size(); i += 2) ASSERT_TRUE(q.cancel(far[i]));
  EXPECT_EQ(q.stats().far_heap_size, 50u);
  // Drain everything; order must stay nondecreasing across the near/far gap.
  TimePoint last = TimePoint::origin();
  std::size_t drained = 0;
  while (!q.empty()) {
    auto p = q.pop();
    EXPECT_GE(p.time, last);
    last = p.time;
    ++drained;
  }
  EXPECT_EQ(drained, 40u + 50u);
  EXPECT_EQ(q.stats().far_heap_size, 0u);
  EXPECT_EQ(q.stats().far_pulls, 50u);  // spacing exceeds the top-level window
}

// Pre-sizing via Config must make the arena big enough that a burst up to
// the hint never grows the slot table afterwards.
TEST(EventQueueTest, ConfigPreSizesSlotArena) {
  EventQueue::Config cfg;
  cfg.expected_events = 4096;
  cfg.horizon = Duration::s(7 * 24 * 3600);  // a week: beyond the wheel span
  EventQueue q(cfg);
  std::vector<EventId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(q.schedule(TimePoint::at_us(i), [] {}));
  }
  EXPECT_EQ(q.size(), 4096u);
  while (!q.empty()) q.pop();
  EXPECT_LE(q.allocated_slots(), 4096u);
}

// Flood guard: one distant timer parks the frontier far ahead (sparse
// regime), then a dense burst of earlier events arrives. The burst must be
// absorbed by the wheels (demotion), not degrade into quadratic due-list
// walks -- and order must still come out exactly (time, seq).
TEST(EventQueueTest, BurstBelowSparseFrontierStaysOrdered) {
  EventQueue q;
  const TimePoint distant = TimePoint::at_ns(3'600'000'000'000);  // one hour
  q.schedule(distant, [] {});  // distant timer raises the frontier
  std::vector<EventId> more;
  for (int i = 0; i < 40; ++i) {  // cross kSparseLimit while wheels are empty
    more.push_back(q.schedule(TimePoint::at_us(500'000 + i), [] {}));
  }
  // Dense burst far below the due minimum.
  for (int i = 0; i < 5000; ++i) {
    q.schedule(TimePoint::at_us(100 + (i * 37) % 4096), [] {});
  }
  EXPECT_EQ(q.size(), 1u + 40u + 5000u);
  TimePoint last = TimePoint::origin();
  std::size_t n = 0;
  while (!q.empty()) {
    auto p = q.pop();
    EXPECT_GE(p.time, last);
    last = p.time;
    ++n;
  }
  EXPECT_EQ(n, 5041u);
  EXPECT_EQ(last, distant);
}

// Regression: opening a level-0 bucket at the last tick of an aligned
// top-level (2^36-tick) window moves the frontier into the next window,
// which changes the XOR-prefix range the far heap is defined by (I4). The
// far heap must be refilled right there: without it, an event just past
// the boundary stays in the heap while advance()'s far boundary lies a
// whole window beyond it, so later wheel events pop first.
TEST(EventQueueTest, FarRefillWhenOpenedBucketCrossesTopWindow) {
  constexpr std::int64_t kGranuleNs = 8192;  // 2^13 ns per tick
  constexpr std::int64_t kWindowTicks = std::int64_t{1} << 36;
  EventQueue q;
  // Populate past the sparse threshold so the boundary events take the
  // wheel/far path instead of the due list.
  for (int i = 0; i < 40; ++i) q.schedule(TimePoint::at_us(10 + i), [] {});
  // A sits on the last tick of the first top-level window; opening its
  // bucket lands the frontier exactly on the window boundary. B lies just
  // past the boundary: far heap at schedule time, inside the wheel horizon
  // once the frontier crosses.
  const TimePoint a = TimePoint::at_ns((kWindowTicks - 1) * kGranuleNs);
  const TimePoint b = TimePoint::at_ns((kWindowTicks + 1) * kGranuleNs);
  q.schedule(a, [] {});
  q.schedule(b, [] {});
  ASSERT_EQ(q.stats().far_heap_size, 1u);
  // Drain the near events and A; opening A's bucket crosses the window.
  TimePoint last = TimePoint::origin();
  for (int i = 0; i < 41; ++i) {
    auto p = q.pop();
    ASSERT_GE(p.time, last);
    last = p.time;
  }
  ASSERT_EQ(last, a);
  // C arrives after the crossing, later than B, and lands in the wheels.
  const TimePoint c = TimePoint::at_ns((kWindowTicks + 100) * kGranuleNs);
  q.schedule(c, [] {});
  EXPECT_EQ(q.pop().time, b);  // the far event beats the later wheel event
  EXPECT_EQ(q.pop().time, c);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ManyInterleavedSchedulesAndCancels) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(TimePoint::at_us(100 - i), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 50u);
  TimePoint last = TimePoint::origin();
  while (!q.empty()) {
    auto p = q.pop();
    EXPECT_GE(p.time, last);
    last = p.time;
  }
}

}  // namespace
}  // namespace rthv::sim
