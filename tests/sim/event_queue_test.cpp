#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rthv::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::at_us(3), [&] { order.push_back(3); });
  q.schedule(TimePoint::at_us(1), [&] { order.push_back(1); });
  q.schedule(TimePoint::at_us(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesPopFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint::at_us(10), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliestLive) {
  EventQueue q;
  q.schedule(TimePoint::at_us(5), [] {});
  q.schedule(TimePoint::at_us(2), [] {});
  EXPECT_EQ(q.next_time(), TimePoint::at_us(2));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(TimePoint::at_us(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint::at_us(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint::at_us(1), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueueTest, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint::at_us(1), [] {});
  q.schedule(TimePoint::at_us(9), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), TimePoint::at_us(9));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopReturnsTimeAndCallback) {
  EventQueue q;
  int hits = 0;
  q.schedule(TimePoint::at_us(4), [&] { ++hits; });
  auto popped = q.pop();
  EXPECT_EQ(popped.time, TimePoint::at_us(4));
  popped.callback();
  EXPECT_EQ(hits, 1);
}

// Satellite requirement: schedule-then-cancel of a million events with exact
// size() bookkeeping throughout, and eager reclamation -- cancelled slots are
// reused, so the slot table's high-water mark stays at the peak *live* count,
// not the total scheduled count.
TEST(EventQueueTest, MillionScheduleCancelExactBookkeeping) {
  constexpr std::size_t kTotal = 1'000'000;
  constexpr std::size_t kBatch = 1000;
  EventQueue q;
  std::vector<EventId> batch;
  batch.reserve(kBatch);
  std::int64_t t = 0;
  for (std::size_t round = 0; round < kTotal / kBatch; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      ASSERT_EQ(q.size(), i);
      batch.push_back(q.schedule(TimePoint::at_ns(++t), [] {}));
    }
    ASSERT_EQ(q.size(), kBatch);
    for (const EventId id : batch) ASSERT_TRUE(q.cancel(id));
    ASSERT_EQ(q.size(), 0u);
    ASSERT_TRUE(q.empty());
    batch.clear();
  }
  // One million events went through, but only kBatch were ever live at once:
  // eager reclamation must have capped the slot table at the live peak.
  EXPECT_LE(q.allocated_slots(), kBatch);
}

TEST(EventQueueTest, CancelledSlotIdsAreNotResurrectedByReuse) {
  EventQueue q;
  const EventId first = q.schedule(TimePoint::at_us(1), [] {});
  ASSERT_TRUE(q.cancel(first));
  // The reused slot gets a new generation; the stale id must stay dead.
  const EventId second = q.schedule(TimePoint::at_us(2), [] {});
  EXPECT_FALSE(q.cancel(first));
  EXPECT_TRUE(q.cancel(second));
  EXPECT_TRUE(q.empty());
}

// Equal-time events must pop in schedule order even when cancellations
// rearrange the heap in between (bit-reproducibility depends on this).
TEST(EventQueueTest, EqualTimeFifoSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 200; ++i) {
    const EventId id =
        q.schedule(TimePoint::at_us(500), [&order, i] { order.push_back(i); });
    if (i % 3 == 0) cancelled.push_back(id);
  }
  for (const EventId id : cancelled) ASSERT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().callback();
  int prev = -1;
  for (const int i : order) {
    EXPECT_NE(i % 3, 0);  // cancelled callbacks never run
    EXPECT_GT(i, prev);   // FIFO among the survivors
    prev = i;
  }
  EXPECT_EQ(order.size(), 200u - cancelled.size());
}

TEST(EventQueueTest, ManyInterleavedSchedulesAndCancels) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(TimePoint::at_us(100 - i), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 50u);
  TimePoint last = TimePoint::origin();
  while (!q.empty()) {
    auto p = q.pop();
    EXPECT_GE(p.time, last);
    last = p.time;
  }
}

}  // namespace
}  // namespace rthv::sim
