#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rthv::sim {
namespace {

using namespace rthv::sim::literals;

TEST(SimulatorTest, ClockStartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), TimePoint::origin());
  EXPECT_TRUE(s.idle());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator s;
  std::vector<std::int64_t> seen;
  s.schedule_at(TimePoint::at_us(5), [&] { seen.push_back(s.now().count_ns()); });
  s.schedule_at(TimePoint::at_us(2), [&] { seen.push_back(s.now().count_ns()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2000, 5000}));
  EXPECT_EQ(s.now(), TimePoint::at_us(5));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimePoint fired;
  s.schedule_at(TimePoint::at_us(10), [&] {
    s.schedule_after(5_us, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, TimePoint::at_us(15));
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndSetsClock) {
  Simulator s;
  int ran = 0;
  s.schedule_at(TimePoint::at_us(1), [&] { ++ran; });
  s.schedule_at(TimePoint::at_us(100), [&] { ++ran; });
  const auto n = s.run_until(TimePoint::at_us(50));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), TimePoint::at_us(50));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(SimulatorTest, EventsExactlyAtHorizonRun) {
  Simulator s;
  bool ran = false;
  s.schedule_at(TimePoint::at_us(50), [&] { ran = true; });
  s.run_until(TimePoint::at_us(50));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator s;
  int ran = 0;
  s.schedule_at(TimePoint::at_us(1), [&] { ++ran; });
  s.schedule_at(TimePoint::at_us(2), [&] { ++ran; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const auto id = s.schedule_at(TimePoint::at_us(1), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CallbackCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_after(1_us, chain);
  };
  s.schedule_after(1_us, chain);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), TimePoint::at_us(10));
}

TEST(SimulatorTest, ZeroDelayEventRunsAtSameTimeAfterCurrent) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(TimePoint::at_us(1), [&] {
    order.push_back(1);
    s.schedule_after(Duration::zero(), [&] { order.push_back(2); });
  });
  s.schedule_at(TimePoint::at_us(1), [&] { order.push_back(3); });
  s.run();
  // The zero-delay event was scheduled after event 3, so FIFO at equal time.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SimulatorTest, ExecutedEventCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(TimePoint::at_us(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(SimulatorTest, EventLimitStopsRunawayLoops) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_after(1_us, forever); };
  s.schedule_after(1_us, forever);
  s.set_event_limit(100);
  s.run_until(TimePoint::max());
  EXPECT_EQ(s.executed_events(), 100u);
  EXPECT_TRUE(s.event_limit_reached());
  // The clock reflects real progress, not the horizon.
  EXPECT_EQ(s.now(), TimePoint::at_us(100));
}

TEST(SimulatorTest, ZeroEventLimitMeansUnlimited) {
  Simulator s;
  for (int i = 0; i < 10; ++i) s.schedule_at(TimePoint::at_us(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 10u);
  EXPECT_FALSE(s.event_limit_reached());
}

TEST(SimulatorTest, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator s;
  s.run_until(TimePoint::at_us(42));
  EXPECT_EQ(s.now(), TimePoint::at_us(42));
}

}  // namespace
}  // namespace rthv::sim
