// The legacy string API is deprecated: emit() now routes through the typed
// obs::TraceRing (categories map 1:1, the message text is dropped), so the
// facade keeps its category counters and render() output without paying a
// string allocation per record.
#include "sim/trace_log.hpp"

#include <gtest/gtest.h>

// This test exercises the deprecated emit() on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace rthv::sim {
namespace {

TEST(TraceLogTest, DisabledByDefaultAndDropsRecords) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  log.emit(TimePoint::at_us(1), TraceCategory::kIrq, "x");
  EXPECT_EQ(log.ring().size(), 0u);
  EXPECT_EQ(log.ring().emitted(), 0u);
}

TEST(TraceLogTest, EnabledRecordsInOrder) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::at_us(1), TraceCategory::kIrq, "a");
  log.emit(TimePoint::at_us(2), TraceCategory::kBottom, "b");
  const auto events = log.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time_ns, TimePoint::at_us(1).count_ns());
  EXPECT_EQ(events[0].category, TraceCategory::kIrq);
  EXPECT_EQ(events[1].category, TraceCategory::kBottom);
  EXPECT_EQ(events[1].point, obs::TracePoint::kLegacy);
}

TEST(TraceLogTest, CountsByCategory) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::origin(), TraceCategory::kMonitor, "m1");
  log.emit(TimePoint::origin(), TraceCategory::kMonitor, "m2");
  log.emit(TimePoint::origin(), TraceCategory::kGuest, "g");
  EXPECT_EQ(log.count(TraceCategory::kMonitor), 2u);
  EXPECT_EQ(log.count(TraceCategory::kGuest), 1u);
  EXPECT_EQ(log.count(TraceCategory::kIrq), 0u);
}

TEST(TraceLogTest, RenderContainsCategoryAndTime) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::at_us(5), TraceCategory::kScheduler, "switch");
  const auto text = log.render();
  EXPECT_NE(text.find("[sched]"), std::string::npos);
  EXPECT_NE(text.find("t=5000"), std::string::npos);
}

TEST(TraceLogTest, ClearEmptiesRecords) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::origin(), TraceCategory::kOther, "x");
  log.clear();
  EXPECT_EQ(log.ring().size(), 0u);
  EXPECT_TRUE(log.enabled()) << "clear() keeps the log enabled";
}

TEST(TraceLogTest, CategoryNamesAreDistinct) {
  EXPECT_EQ(to_string(TraceCategory::kIrq), "irq");
  EXPECT_EQ(to_string(TraceCategory::kInterpose), "interpose");
  EXPECT_NE(to_string(TraceCategory::kTopHandler), to_string(TraceCategory::kBottom));
}

}  // namespace
}  // namespace rthv::sim

#pragma GCC diagnostic pop
