#include "sim/trace_log.hpp"

#include <gtest/gtest.h>

namespace rthv::sim {
namespace {

TEST(TraceLogTest, DisabledByDefaultAndDropsRecords) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  log.emit(TimePoint::at_us(1), TraceCategory::kIrq, "x");
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceLogTest, EnabledRecordsInOrder) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::at_us(1), TraceCategory::kIrq, "a");
  log.emit(TimePoint::at_us(2), TraceCategory::kBottom, "b");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].message, "a");
  EXPECT_EQ(log.records()[1].category, TraceCategory::kBottom);
}

TEST(TraceLogTest, CountsByCategory) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::origin(), TraceCategory::kMonitor, "m1");
  log.emit(TimePoint::origin(), TraceCategory::kMonitor, "m2");
  log.emit(TimePoint::origin(), TraceCategory::kGuest, "g");
  EXPECT_EQ(log.count(TraceCategory::kMonitor), 2u);
  EXPECT_EQ(log.count(TraceCategory::kGuest), 1u);
  EXPECT_EQ(log.count(TraceCategory::kIrq), 0u);
}

TEST(TraceLogTest, RenderContainsCategoriesAndMessages) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::at_us(5), TraceCategory::kScheduler, "switch");
  const auto text = log.render();
  EXPECT_NE(text.find("[sched]"), std::string::npos);
  EXPECT_NE(text.find("switch"), std::string::npos);
}

TEST(TraceLogTest, ClearEmptiesRecords) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TimePoint::origin(), TraceCategory::kOther, "x");
  log.clear();
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceLogTest, CategoryNamesAreDistinct) {
  EXPECT_EQ(to_string(TraceCategory::kIrq), "irq");
  EXPECT_EQ(to_string(TraceCategory::kInterpose), "interpose");
  EXPECT_NE(to_string(TraceCategory::kTopHandler), to_string(TraceCategory::kBottom));
}

}  // namespace
}  // namespace rthv::sim
