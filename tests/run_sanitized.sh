#!/usr/bin/env bash
# Builds and runs the test suite under sanitizers:
#   1. ASan + UBSan (RTHV_SANITIZE=ON) over the full suite
#   2. TSan (RTHV_TSAN=ON) over the threaded exp/ tests and the
#      observability suite (ctest -L obs) -- optional, pass --tsan
#
# usage: tests/run_sanitized.sh [--tsan] [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
jobs="$(nproc 2>/dev/null || echo 1)"
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    *) jobs="$arg" ;;
  esac
done

echo "== ASan + UBSan build =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DRTHV_SANITIZE=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  echo "== TSan build (threaded exp/ + obs tests) =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DRTHV_TSAN=ON
  cmake --build build-tsan -j "$jobs" --target test_exp test_obs
  ctest --test-dir build-tsan --output-on-failure -R 'ThreadPool|SweepRunner'
  ctest --test-dir build-tsan --output-on-failure -L obs
fi

echo "sanitized runs passed"
