#!/usr/bin/env bash
# Builds and runs the test suite under sanitizers:
#   1. ASan + UBSan (RTHV_SANITIZE=ON) over the full suite
#   2. TSan (RTHV_TSAN=ON) over the FULL suite -- optional, pass --tsan
# Pass --lint to also run the static-analysis pass (tools/rthv_lint +
# clang-tidy when available) before any sanitizer build.
#
# usage: tests/run_sanitized.sh [--tsan] [--lint] [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
run_lint=0
jobs="$(nproc 2>/dev/null || echo 1)"
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --lint) run_lint=1 ;;
    *) jobs="$arg" ;;
  esac
done

if [[ "$run_lint" == 1 ]]; then
  echo "== static analysis =="
  tests/run_static_analysis.sh
fi

echo "== ASan + UBSan build =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DRTHV_SANITIZE=ON
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== ASan + UBSan: fault-injection campaigns (ctest -L fault) =="
ctest --test-dir build-asan --output-on-failure -L fault -j "$jobs"

# Multi-core merge loop + shared-interconnect accounting under ASan/UBSan:
# per-core simulators schedule into each other (routed IRQs), so lifetime
# bugs across core boundaries surface here.
echo "== ASan + UBSan: multi-core platform (ctest -L multicore) =="
ctest --test-dir build-asan --output-on-failure -L multicore -j "$jobs"

# The checkpoint/restore layer is the prime use-after-free candidate: every
# hunt evaluation restores cloned callbacks onto a live object graph and
# throws armed mutant engines away mid-simulation. The hunt suite plus a
# one-finding rthv_hunt smoke drives that whole path under ASan/UBSan.
echo "== ASan + UBSan: snapshot hunt (ctest -L hunt) =="
ctest --test-dir build-asan --output-on-failure -L hunt -j "$jobs"

# Pool recycling restores snapshots onto live object graphs and re-leases
# the same HypervisorSystem across runs; ASan/UBSan over the batch suite
# catches stale-pointer bugs in clear_traces()/restore() recycling.
echo "== ASan + UBSan: batched campaign engine (ctest -L batch) =="
ctest --test-dir build-asan --output-on-failure -L batch -j "$jobs"

echo "== ASan + UBSan: rthv_hunt smoke =="
./build-asan/tools/rthv_hunt/rthv_hunt --baseline --weaken 4 --exp 1444 0 \
  --generations 10 --population 8 --horizon-ms 100 --fork-ms 10 --seed 7 \
  --jobs 2 --expect-finding > /dev/null

# The randomized batched-vs-scalar admission differential is the designated
# sanitizer workout for the SIMD admit kernels: random windows and random
# batch splits under ASan/UBSan probe every load the AND-reduction and the
# AVX2 clone perform.
echo "== ASan + UBSan: admission-kernel differential =="
ctest --test-dir build-asan --output-on-failure -R 'AdmitKernelDifferentialTest' -j "$jobs"

# Short benchmark runs under ASan/UBSan: the timer wheel's arena and bucket
# links get exercised at benchmark-sized populations no unit test reaches.
echo "== ASan + UBSan: perf smoke (ctest -L perf-smoke) =="
ctest --test-dir build-asan --output-on-failure -L perf-smoke -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  echo "== TSan build (full suite) =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DRTHV_TSAN=ON
  cmake --build build-tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs"

  # The --jobs bit-identity contract for fault sweeps is exactly the kind of
  # property TSan falsifies: injectors and oracle replay must never share
  # mutable state across sweep workers.
  echo "== TSan: fault-injection campaigns (ctest -L fault) =="
  ctest --test-dir build-tsan --output-on-failure -L fault -j "$jobs"

  # The multicore suite's RunIsIdenticalForAnyJobsCount shards whole
  # MulticoreSystem runs over SweepRunner workers: TSan proves the merged
  # per-core simulators and the shared interconnect never leak mutable
  # state across those workers.
  echo "== TSan: multi-core platform (ctest -L multicore) =="
  ctest --test-dir build-tsan --output-on-failure -L multicore -j "$jobs"

  # The batch runner's work-stealing deques are lock-per-deque by design;
  # TSan over the batch suite (jobs up to 16, deliberate imbalance) proves
  # owner pops, thief steals, and SystemPool leasing are race-free.
  echo "== TSan: batched campaign engine (ctest -L batch) =="
  ctest --test-dir build-tsan --output-on-failure -L batch -j "$jobs"
fi

echo "sanitized runs passed"
