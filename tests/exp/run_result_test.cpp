// Merge semantics of RunResult and the stats-layer merge() helpers it rides
// on: folding per-run results in index order must equal one sequential run.
#include "exp/run_result.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/hypervisor_system.hpp"
#include "stats/histogram.hpp"
#include "stats/latency_recorder.hpp"
#include "stats/summary.hpp"
#include "workload/generators.hpp"

namespace rthv::exp {
namespace {

using sim::Duration;
using stats::HandlingClass;

TEST(SummaryMergeTest, AppendsSamplesInOrder) {
  stats::Summary a;
  a.add(Duration::us(10));
  a.add(Duration::us(30));
  stats::Summary b;
  b.add(Duration::us(20));

  a.merge(b);
  ASSERT_EQ(a.count(), 3u);
  EXPECT_EQ(a.samples()[0], Duration::us(10));
  EXPECT_EQ(a.samples()[1], Duration::us(30));
  EXPECT_EQ(a.samples()[2], Duration::us(20));
  EXPECT_EQ(a.median(), Duration::us(20));
  EXPECT_EQ(a.max(), Duration::us(30));
}

TEST(SummaryMergeTest, MergeAfterStatsQueryStaysCorrect) {
  stats::Summary a;
  a.add(Duration::us(50));
  EXPECT_EQ(a.median(), Duration::us(50));  // forces the sorted cache
  stats::Summary b;
  b.add(Duration::us(10));
  a.merge(b);
  EXPECT_EQ(a.min(), Duration::us(10));  // cache must have been invalidated
}

TEST(LatencyRecorderMergeTest, PerClassAndOverallCountsAdd) {
  stats::LatencyRecorder a;
  a.record(HandlingClass::kDirect, Duration::us(5));
  a.record(HandlingClass::kDelayed, Duration::us(500));
  stats::LatencyRecorder b;
  b.record(HandlingClass::kDirect, Duration::us(7));
  b.record(HandlingClass::kInterposed, Duration::us(50));

  a.merge(b);
  EXPECT_EQ(a.count(HandlingClass::kDirect), 2u);
  EXPECT_EQ(a.count(HandlingClass::kInterposed), 1u);
  EXPECT_EQ(a.count(HandlingClass::kDelayed), 1u);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.all().max(), Duration::us(500));
}

TEST(HistogramMergeTest, BinCountsAdd) {
  stats::Histogram a(Duration::us(0), Duration::us(100), Duration::us(10));
  a.add(Duration::us(15));
  a.add(Duration::us(200));  // overflow
  stats::Histogram b(Duration::us(0), Duration::us(100), Duration::us(10));
  b.add(Duration::us(15));
  b.add(Duration::us(25));
  b.add(Duration::us(-5));  // underflow

  a.merge(b);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.bin_count(2), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(HistogramMergeTest, MismatchedBinningThrows) {
  stats::Histogram a(Duration::us(0), Duration::us(100), Duration::us(10));
  stats::Histogram coarser(Duration::us(0), Duration::us(100), Duration::us(20));
  stats::Histogram shifted(Duration::us(10), Duration::us(110), Duration::us(10));
  EXPECT_THROW(a.merge(coarser), std::invalid_argument);
  EXPECT_THROW(a.merge(shifted), std::invalid_argument);
}

RunResult run_once(std::uint64_t seed, std::size_t irqs) {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = Duration::us(1444);
  core::HypervisorSystem system(cfg);
  system.keep_completions(true);
  workload::ExponentialTraceGenerator gen(Duration::us(1444), seed,
                                          Duration::us(1444));
  system.attach_trace(0, gen.generate(irqs));
  system.run(Duration::s(10));
  return RunResult::capture(system);
}

TEST(RunResultTest, CaptureSnapshotsARealRun) {
  const RunResult r = run_once(7, 100);
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.recorder.total(), r.completed);
  EXPECT_EQ(r.completions.size(), r.completed);
  EXPECT_GT(r.tdma_switches, 0u);
}

TEST(RunResultTest, FillHistogramCoversEveryCompletion) {
  RunResult r = run_once(7, 100);
  r.fill_histogram(Duration::us(0), Duration::us(8500), Duration::us(100));
  ASSERT_TRUE(r.histogram.has_value());
  EXPECT_EQ(r.histogram->total(), r.completions.size());
}

TEST(RunResultTest, MergeEqualsSequentialAggregation) {
  RunResult a = run_once(1, 80);
  RunResult b = run_once(2, 80);
  const std::uint64_t total = a.completed + b.completed;
  const std::size_t samples = a.completions.size() + b.completions.size();
  const std::uint64_t tdma = a.tdma_switches + b.tdma_switches;

  a.fill_histogram(Duration::us(0), Duration::us(8500), Duration::us(100));
  b.fill_histogram(Duration::us(0), Duration::us(8500), Duration::us(100));
  const std::uint64_t hist_total = a.histogram->total() + b.histogram->total();

  a.merge(std::move(b));
  EXPECT_EQ(a.completed, total);
  EXPECT_EQ(a.recorder.total(), total);
  EXPECT_EQ(a.completions.size(), samples);
  EXPECT_EQ(a.tdma_switches, tdma);
  EXPECT_EQ(a.histogram->total(), hist_total);
}

TEST(RunResultTest, MergeAdoptsHistogramFromOther) {
  RunResult a = run_once(1, 40);
  RunResult b = run_once(2, 40);
  b.fill_histogram(Duration::us(0), Duration::us(8500), Duration::us(100));
  const std::uint64_t b_total = b.histogram->total();
  ASSERT_FALSE(a.histogram.has_value());
  a.merge(std::move(b));
  ASSERT_TRUE(a.histogram.has_value());
  EXPECT_EQ(a.histogram->total(), b_total);
}

TEST(RunResultTest, WriteSummaryIsDeterministicForSameSeed) {
  const auto render = [](const RunResult& r) {
    std::ostringstream os;
    r.recorder.write_summary(os);
    return os.str();
  };
  EXPECT_EQ(render(run_once(11, 60)), render(run_once(11, 60)));
  EXPECT_NE(render(run_once(11, 60)), render(run_once(12, 60)));
}

}  // namespace
}  // namespace rthv::exp
