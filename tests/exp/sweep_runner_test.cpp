// Determinism contract of parallel sweeps: the result of map() -- and of
// full HypervisorSystem runs driven through it -- must be bit-identical for
// any job count (satellite requirement: --jobs 1 vs --jobs 8 produce the
// same LatencyRecorder summaries and trace logs).
#include "exp/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/hypervisor_system.hpp"
#include "exp/seed.hpp"
#include "workload/generators.hpp"

namespace rthv::exp {
namespace {

TEST(DeriveSeedTest, DependsOnlyOnBaseAndIndex) {
  EXPECT_EQ(derive_seed(42, 3), derive_seed(42, 3));
  EXPECT_NE(derive_seed(42, 3), derive_seed(42, 4));
  EXPECT_NE(derive_seed(42, 3), derive_seed(43, 3));
  static_assert(derive_seed(1, 0) == derive_seed(1, 0));  // usable at compile time
}

TEST(DeriveSeedTest, NeighbouringIndicesAreWellSpread) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(7, i));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across a realistic sweep
}

TEST(SweepRunnerTest, ZeroJobsMeansSequential) {
  SweepRunner runner(0);
  EXPECT_EQ(runner.jobs(), 1u);
}

TEST(SweepRunnerTest, ResultsOrderedByIndexRegardlessOfFinishOrder) {
  SweepRunner runner(8);
  // Early indices sleep longest, so late indices finish first; the output
  // must still come back in index order.
  const auto results = runner.map(16, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(16 - i));
    return i * i;
  });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunnerTest, SequentialAndParallelAgree) {
  const auto run = [](std::size_t jobs) {
    SweepRunner runner(jobs);
    return runner.map(10, [](std::size_t i) { return 1000 + i * 7; });
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(SweepRunnerTest, EmptyAndSingletonCounts) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.map(0, [](std::size_t i) { return i; }).empty());
  const auto one = runner.map(1, [](std::size_t i) { return i + 99; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 99u);
}

TEST(SweepRunnerTest, RethrowsLowestIndexFailure) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    SweepRunner runner(jobs);
    try {
      runner.map(12, [](std::size_t i) -> int {
        if (i == 3 || i == 7) throw std::runtime_error("run " + std::to_string(i));
        return 0;
      });
      FAIL() << "expected exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "run 3") << "jobs=" << jobs;
    }
  }
}

// Runs one monitored system per index with a derive_seed()-derived workload
// and returns (latency summary, full trace log) rendered as text.
std::vector<std::string> run_system_sweep(std::size_t jobs) {
  SweepRunner runner(jobs);
  return runner.map(6, [](std::size_t i) {
    auto cfg = core::SystemConfig::paper_baseline();
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    cfg.sources[0].d_min = sim::Duration::us(1444);
    core::HypervisorSystem system(cfg);
    system.hypervisor().trace_log().set_enabled(true);
    workload::ExponentialTraceGenerator gen(
        sim::Duration::us(400 + 150 * static_cast<std::int64_t>(i)),
        derive_seed(42, i), sim::Duration::us(100));
    system.attach_trace(0, gen.generate(60));
    system.run(sim::Duration::s(10));
    std::ostringstream os;
    system.recorder().write_summary(os);
    os << '\n' << system.hypervisor().trace_log().render();
    return os.str();
  });
}

TEST(SweepRunnerTest, SystemRunsBitIdenticalAcrossJobCounts) {
  const auto sequential = run_system_sweep(1);
  const auto parallel = run_system_sweep(8);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i], parallel[i]) << "run " << i << " diverged";
  }
  // Sanity: the runs actually did work (non-empty trace, non-trivial text).
  for (const auto& text : sequential) EXPECT_GT(text.size(), 100u);
}

}  // namespace
}  // namespace rthv::exp
