// Contracts of the batched campaign engine (SystemPool + BatchRunner) and
// of the batched trace-ring reservation it leans on:
//
//  - warm-start soundness: a pooled system recycled by clear_traces() +
//    restore(pristine) is bit-identical to a cold-constructed system for
//    the same workload, across many seeds and across mid-campaign slot
//    recycling (the randomized differential satellite);
//  - jobs-identity: campaign results are bit-identical for any jobs/chunk
//    combination and with warm start disabled;
//  - plan_shards covers every run index exactly once, contiguously;
//  - TraceRing::BatchEmitter settles emitted/retained/dropped accounting
//    exactly like the scalar emit path, including on wraparound.
#include "exp/batch_runner.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/hypervisor_system.hpp"
#include "exp/system_pool.hpp"
#include "obs/trace_ring.hpp"
#include "workload/generators.hpp"

namespace rthv::exp {
namespace {

core::SystemConfig monitored_config() {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = sim::Duration::us(1444);
  return cfg;
}

// Runs one seeded workload on `system` and renders everything observable
// about the run -- merged metrics, latency summary, executed event count and
// every completion record -- so two digests match only if the simulations
// were bit-identical.
std::string run_digest(core::HypervisorSystem& system, std::uint64_t seed) {
  workload::ExponentialTraceGenerator gen(sim::Duration::us(700), seed,
                                          sim::Duration::us(100));
  system.attach_trace(0, gen.generate(40));
  const std::uint64_t completed = system.run(sim::Duration::s(1000));
  std::ostringstream os;
  os << completed << '|' << system.simulator().executed_events() << '|';
  system.recorder().write_summary(os);
  system.metrics_snapshot().write_json(os);
  for (const auto& c : system.completions()) {
    os << ';' << c.source << ',' << static_cast<int>(c.handling) << ','
       << c.latency().count_ns();
  }
  return os.str();
}

// --- warm-start differential ------------------------------------------------

TEST(SystemPoolTest, WarmRecycleMatchesColdConstructionAcrossSeeds) {
  const auto cfg = monitored_config();
  SystemPool::Options options;
  options.keep_completions = true;
  SystemPool pool(cfg, options);
  auto lease = pool.acquire();
  // 12 seeds through ONE slot: run 0 is the fresh system, every later run a
  // warm recycle of a slot that has already simulated -- the adversarial
  // case for restore-in-place.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    core::HypervisorSystem cold(cfg);
    cold.keep_completions(true);
    const std::string expected = run_digest(cold, seed);
    const std::string warm = run_digest(lease.begin_run(), seed);
    EXPECT_EQ(warm, expected) << "seed " << seed << " diverged after recycling";
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.constructed, 1u);
  EXPECT_EQ(stats.warm_recycles, 11u);
  EXPECT_EQ(stats.cold_rebuilds, 0u);
}

TEST(SystemPoolTest, ReleaseAndReacquireRecyclesTheSlot) {
  SystemPool::Options options;
  options.keep_completions = true;
  SystemPool pool(monitored_config(), options);
  std::vector<std::string> digests;
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    auto lease = pool.acquire();  // released at scope exit, slot goes back
    digests.push_back(run_digest(lease.begin_run(), seed));
  }
  EXPECT_EQ(pool.size(), 1u);  // every acquire() reused the one slot
  core::HypervisorSystem cold(monitored_config());
  cold.keep_completions(true);
  EXPECT_EQ(digests[2], run_digest(cold, 22));
}

TEST(SystemPoolTest, ColdRebuildModeAlsoMatches) {
  SystemPool::Options options;
  options.warm_start = false;
  options.keep_completions = true;
  SystemPool pool(monitored_config(), options);
  auto lease = pool.acquire();
  for (std::uint64_t seed = 5; seed <= 7; ++seed) {
    core::HypervisorSystem cold(monitored_config());
    cold.keep_completions(true);
    EXPECT_EQ(run_digest(lease.begin_run(), seed), run_digest(cold, seed));
  }
  EXPECT_EQ(pool.stats().cold_rebuilds, 2u);
  EXPECT_EQ(pool.stats().warm_recycles, 0u);
}

// --- jobs-identity ----------------------------------------------------------

std::vector<std::string> run_campaign(std::size_t jobs, std::size_t chunk,
                                      bool warm_start) {
  SystemPool::Options options;
  options.warm_start = warm_start;
  options.keep_completions = true;
  SystemPool pool(monitored_config(), options);
  BatchRunner runner(BatchOptions{.jobs = jobs, .chunk = chunk});
  return runner.map(pool, 32, [](std::size_t i, core::HypervisorSystem& system) {
    return run_digest(system, 100 + i);
  });
}

TEST(BatchRunnerTest, CampaignBitIdenticalForAnyJobsChunkAndWarmStartMode) {
  const auto reference = run_campaign(1, 16, true);
  ASSERT_EQ(reference.size(), 32u);
  EXPECT_EQ(run_campaign(4, 4, true), reference);
  EXPECT_EQ(run_campaign(16, 1, true), reference);
  EXPECT_EQ(run_campaign(4, 4, false), reference);  // warm start disabled
}

TEST(BatchRunnerTest, PoolStaysBoundedByWorkerCount) {
  SystemPool pool(monitored_config());
  BatchRunner runner(BatchOptions{.jobs = 4, .chunk = 2});
  const auto results =
      runner.map(pool, 40, [](std::size_t i, core::HypervisorSystem& system) {
        workload::ExponentialTraceGenerator gen(sim::Duration::us(700), 1 + i);
        system.attach_trace(0, gen.generate(5));
        return system.run(sim::Duration::s(1000));
      });
  ASSERT_EQ(results.size(), 40u);
  const auto& stats = runner.stats();
  EXPECT_EQ(stats.runs, 40u);
  EXPECT_LE(stats.pool.constructed, 4u);  // O(workers), not O(runs)
  EXPECT_EQ(stats.pool.constructed + stats.pool.warm_recycles, 40u);
  EXPECT_EQ(stats.chunks, 20u);
}

TEST(BatchRunnerTest, RethrowsLowestIndexFailure) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    SystemPool pool(monitored_config());
    BatchRunner runner(BatchOptions{.jobs = jobs, .chunk = 2});
    try {
      runner.map(pool, 12, [](std::size_t i, core::HypervisorSystem&) -> int {
        if (i == 3 || i == 7) throw std::runtime_error("run " + std::to_string(i));
        return 0;
      });
      FAIL() << "expected exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "run 3") << "jobs=" << jobs;
    }
  }
}

TEST(BatchRunnerTest, EmptyAndSingletonCampaigns) {
  SystemPool pool(monitored_config());
  BatchRunner runner(BatchOptions{.jobs = 4, .chunk = 16});
  EXPECT_TRUE(
      runner.map(pool, 0, [](std::size_t, core::HypervisorSystem&) { return 1; })
          .empty());
  const auto one =
      runner.map(pool, 1, [](std::size_t i, core::HypervisorSystem&) { return i + 9; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 9u);
}

// --- plan_shards ------------------------------------------------------------

void expect_exact_cover(const std::vector<std::vector<RunRange>>& shards,
                        std::size_t count) {
  std::set<std::size_t> seen;
  for (const auto& shard : shards) {
    for (const auto& range : shard) {
      EXPECT_LT(range.begin, range.end);
      for (std::size_t i = range.begin; i < range.end; ++i) {
        EXPECT_TRUE(seen.insert(i).second) << "index " << i << " dealt twice";
      }
    }
  }
  EXPECT_EQ(seen.size(), count);
  if (count > 0) {
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), count - 1);
  }
}

TEST(PlanShardsTest, CoversEveryIndexExactlyOnce) {
  expect_exact_cover(plan_shards(100, 16, 4), 100);
  expect_exact_cover(plan_shards(7, 3, 2), 7);
  expect_exact_cover(plan_shards(1, 16, 8), 1);
  expect_exact_cover(plan_shards(0, 16, 4), 0);
  expect_exact_cover(plan_shards(1000, 1, 16), 1000);
}

TEST(PlanShardsTest, ShardsAreContiguousAndBalanced) {
  const auto shards = plan_shards(100, 10, 4);  // 10 chunks over 4 workers
  ASSERT_EQ(shards.size(), 4u);
  std::size_t next = 0;
  std::size_t min_chunks = 100u;
  std::size_t max_chunks = 0u;
  for (const auto& shard : shards) {
    for (const auto& range : shard) {
      EXPECT_EQ(range.begin, next);  // worker shards partition 0..count in order
      next = range.end;
    }
    min_chunks = std::min(min_chunks, shard.size());
    max_chunks = std::max(max_chunks, shard.size());
  }
  EXPECT_EQ(next, 100u);
  EXPECT_LE(max_chunks - min_chunks, 1u);
}

TEST(PlanShardsTest, MoreWorkersThanChunksLeavesEmptyShards) {
  const auto shards = plan_shards(10, 16, 8);  // one chunk, eight workers
  ASSERT_EQ(shards.size(), 8u);
  std::size_t non_empty = 0;
  for (const auto& shard : shards) non_empty += shard.empty() ? 0u : 1u;
  EXPECT_EQ(non_empty, 1u);
  expect_exact_cover(shards, 10);
}

// --- TraceRing::BatchEmitter ------------------------------------------------

obs::TraceEvent make_event(std::int64_t t) {
  obs::TraceEvent e;
  e.time_ns = t;
  e.point = obs::TracePoint::kIrqPush;
  e.category = obs::TraceCategory::kIrq;
  e.partition = 1;
  e.source = 2;
  e.arg0 = static_cast<std::uint64_t>(t);
  return e;
}

void expect_rings_equal(const obs::TraceRing& batched, const obs::TraceRing& scalar) {
  EXPECT_EQ(batched.size(), scalar.size());
  EXPECT_EQ(batched.emitted(), scalar.emitted());
  EXPECT_EQ(batched.dropped(), scalar.dropped());
  EXPECT_EQ(batched.category_count(obs::TraceCategory::kIrq),
            scalar.category_count(obs::TraceCategory::kIrq));
  const auto a = batched.snapshot();
  const auto b = scalar.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_ns, b[i].time_ns) << "event " << i;
    EXPECT_EQ(a[i].arg0, b[i].arg0) << "event " << i;
  }
}

TEST(BatchEmitterTest, MatchesScalarEmissionWithoutWraparound) {
  obs::TraceRing batched(64);
  obs::TraceRing scalar(64);
  batched.set_enabled(true);
  scalar.set_enabled(true);
  {
    obs::TraceRing::BatchEmitter burst(batched);
    for (std::int64_t t = 0; t < 20; ++t) {
      const auto e = make_event(t);
      burst.emit(e.time_ns, e.point, e.category, e.partition, e.source, e.arg0, 0);
    }
  }  // destructor commits
  for (std::int64_t t = 0; t < 20; ++t) scalar.emit(make_event(t));
  expect_rings_equal(batched, scalar);
  EXPECT_EQ(batched.dropped(), batched.emitted() - batched.size());
}

TEST(BatchEmitterTest, WraparoundAccountingMatchesScalar) {
  obs::TraceRing batched(8);
  obs::TraceRing scalar(8);
  batched.set_enabled(true);
  scalar.set_enabled(true);
  // Three bursts totalling 21 events through a capacity-8 ring: the ring
  // wraps twice and the conservation law dropped == emitted - size must
  // settle identically to 21 scalar emits.
  std::int64_t t = 0;
  for (const int burst_len : {5, 9, 7}) {
    obs::TraceRing::BatchEmitter burst(batched);
    for (int k = 0; k < burst_len; ++k, ++t) {
      const auto e = make_event(t);
      burst.emit(e.time_ns, e.point, e.category, e.partition, e.source, e.arg0, 0);
    }
    burst.commit();
  }
  for (std::int64_t s = 0; s < t; ++s) scalar.emit(make_event(s));
  expect_rings_equal(batched, scalar);
  EXPECT_EQ(batched.size(), 8u);
  EXPECT_EQ(batched.emitted(), 21u);
  EXPECT_EQ(batched.dropped(), 13u);
}

TEST(BatchEmitterTest, SingleBurstLargerThanCapacity) {
  obs::TraceRing ring(4);
  ring.set_enabled(true);
  {
    obs::TraceRing::BatchEmitter burst(ring);
    for (std::int64_t x = 0; x < 11; ++x) {
      burst.emit(x, obs::TracePoint::kIrqPush, obs::TraceCategory::kIrq);
    }
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.emitted(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
  const auto events = ring.snapshot();  // newest 4 retained, oldest first
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].time_ns, static_cast<std::int64_t>(7 + i));
  }
}

TEST(BatchEmitterTest, DisabledRingIsInert) {
  obs::TraceRing ring(8);  // never enabled: no storage allocated
  obs::TraceRing::BatchEmitter burst(ring);
  EXPECT_FALSE(burst.active());
  burst.emit(1, obs::TracePoint::kIrqPush, obs::TraceCategory::kIrq);
  burst.commit();
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(BatchEmitterTest, FlushAndReopenPreservesOrderAroundScalarEmit) {
  obs::TraceRing ring(16);
  ring.set_enabled(true);
  obs::TraceRing::BatchEmitter burst(ring);
  burst.emit(1, obs::TracePoint::kIrqPush, obs::TraceCategory::kIrq);
  burst.commit();
  ring.emit(make_event(2));  // e.g. a health-monitor report mid-burst
  obs::TraceRing::BatchEmitter reopened(ring);
  reopened.emit(3, obs::TracePoint::kIrqPush, obs::TraceCategory::kIrq);
  reopened.commit();
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time_ns, 1);
  EXPECT_EQ(events[1].time_ns, 2);
  EXPECT_EQ(events[2].time_ns, 3);
}

}  // namespace
}  // namespace rthv::exp
