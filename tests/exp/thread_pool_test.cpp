#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace rthv::exp {
namespace {

TEST(ThreadPoolTest, DrainsEveryTaskBeforeDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor must drain the queue, not drop it
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZero) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  while (!ran.load()) std::this_thread::yield();
}

TEST(ThreadPoolTest, SingleWorkerExecutesInSubmissionOrder) {
  std::vector<int> order;
  std::mutex mutex;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&order, &mutex, i] {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back(i);
      });
    }
  }
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, WorkRunsOffTheSubmittingThread) {
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> same{true};
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(2);
    pool.submit([&, caller] {
      same = (std::this_thread::get_id() == caller);
      ran = true;
    });
  }
  EXPECT_TRUE(ran.load());
  EXPECT_FALSE(same.load());
}

TEST(ThreadPoolTest, SlowTasksDoNotStarveLaterOnes) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.fetch_add(1);
    });
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 11);
}

TEST(ThreadPoolTest, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

}  // namespace
}  // namespace rthv::exp
