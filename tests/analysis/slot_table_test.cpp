#include "analysis/slot_table.hpp"

#include <gtest/gtest.h>

#include "analysis/irq_latency.hpp"

namespace rthv::analysis {
namespace {

using sim::Duration;

TEST(SlotTableModelTest, BasicProperties) {
  const auto m = SlotTableModel::single_slot(Duration::us(14000), Duration::us(6000),
                                             Duration::zero());
  EXPECT_EQ(m.cycle(), Duration::us(14000));
  EXPECT_EQ(m.service_per_cycle(), Duration::us(6000));
  EXPECT_EQ(m.service_entries_per_cycle(), 1u);
}

TEST(SlotTableModelTest, WindowInsideForeignRunFullyBlocked) {
  const auto m = SlotTableModel::single_slot(Duration::us(14000), Duration::us(6000),
                                             Duration::zero());
  EXPECT_EQ(m.interference(Duration::us(1)), Duration::us(1));
  EXPECT_EQ(m.interference(Duration::us(8000)), Duration::us(8000));
}

TEST(SlotTableModelTest, WindowSpanningServiceGetsCredit) {
  const auto m = SlotTableModel::single_slot(Duration::us(14000), Duration::us(6000),
                                             Duration::zero());
  // 9000us window starting at the foreign run: 8000 blocked + 1000 service.
  EXPECT_EQ(m.interference(Duration::us(9000)), Duration::us(8000));
  // Full cycle: exactly the foreign share.
  EXPECT_EQ(m.interference(Duration::us(14000)), Duration::us(8000));
  EXPECT_EQ(m.interference(Duration::us(28000)), Duration::us(16000));
}

TEST(SlotTableModelTest, EntryOverheadBlocksSlotStart) {
  const auto m = SlotTableModel::single_slot(Duration::us(14000), Duration::us(6000),
                                             Duration::us(50));
  EXPECT_EQ(m.interference(Duration::us(8050)), Duration::us(8050));
  EXPECT_EQ(m.interference(Duration::us(8051)), Duration::us(8050));
  EXPECT_EQ(m.interference(Duration::us(14000)), Duration::us(8050));
}

TEST(SlotTableModelTest, MonotoneInWindow) {
  const auto m = SlotTableModel::evenly_split(Duration::us(14000), Duration::us(6000), 3,
                                              Duration::us(50));
  Duration prev = Duration::zero();
  for (std::int64_t us = 0; us <= 30000; us += 137) {
    const auto v = m.interference(Duration::us(us));
    EXPECT_GE(v, prev) << us;
    EXPECT_LE(v, Duration::us(us));
    prev = v;
  }
}

TEST(SlotTableModelTest, SplittingReducesWorstBlocking) {
  const Duration cycle = Duration::us(14000);
  const Duration slot = Duration::us(6000);
  const Duration oh = Duration::us(50);
  const auto one = SlotTableModel::single_slot(cycle, slot, oh);
  const auto two = SlotTableModel::evenly_split(cycle, slot, 2, oh);
  const auto four = SlotTableModel::evenly_split(cycle, slot, 4, oh);
  // Worst contiguous blocking shrinks with the split factor...
  const Duration probe = Duration::us(4100);
  EXPECT_GT(one.interference(probe), two.interference(probe));
  EXPECT_GT(two.interference(probe), four.interference(probe));
  // ...but per-cycle overhead grows with the number of service entries.
  EXPECT_EQ(one.interference(cycle), Duration::us(8000) + oh);
  EXPECT_EQ(two.interference(cycle), Duration::us(8000) + 2 * oh);
  EXPECT_EQ(four.interference(cycle), Duration::us(8000) + 4 * oh);
}

TEST(SlotTableModelTest, SingleSlotMatchesEq8WithinOneCycle) {
  // Within the busy-window fixed point both formulations yield the same
  // worst case for the paper's configuration.
  const auto table = SlotTableModel::single_slot(Duration::us(14000), Duration::us(6000),
                                                 Duration::zero());
  const TdmaModel eq8{Duration::us(14000), Duration::us(6000), Duration::zero()};

  BusyWindowProblem exact;
  exact.per_event_cost = Duration::us(40);
  exact.interference.push_back([&table](Duration w) { return table.interference(w); });
  BusyWindowProblem classic;
  classic.per_event_cost = Duration::us(40);
  classic.interference.push_back(
      [&eq8](Duration w) { return tdma_interference(w, eq8); });

  const SporadicModel own(Duration::us(20000));
  const auto r_exact = response_time(exact, own);
  const auto r_classic = response_time(classic, own);
  ASSERT_TRUE(r_exact && r_classic);
  EXPECT_EQ(r_exact->worst_case, r_classic->worst_case);
  EXPECT_EQ(r_exact->worst_case, Duration::us(8040));
}

TEST(SlotTableModelTest, ExactModelNeverExceedsEq8) {
  const auto table = SlotTableModel::single_slot(Duration::us(14000), Duration::us(6000),
                                                 Duration::us(50));
  const TdmaModel eq8{Duration::us(14000), Duration::us(6000), Duration::us(50)};
  for (std::int64_t us = 1; us <= 50000; us += 777) {
    EXPECT_LE(table.interference(Duration::us(us)),
              tdma_interference(Duration::us(us), eq8))
        << us;
  }
}

TEST(SlotTableModelTest, AsymmetricTable) {
  // Service 1ms, foreign 3ms, service 2ms, foreign 8ms (cycle 14ms).
  SlotTableModel m({{true, Duration::ms(1)},
                    {false, Duration::ms(3)},
                    {true, Duration::ms(2)},
                    {false, Duration::ms(8)}},
                   Duration::zero());
  EXPECT_EQ(m.service_per_cycle(), Duration::ms(3));
  EXPECT_EQ(m.service_entries_per_cycle(), 2u);
  // Worst 9ms window: the 8ms foreign run plus 1ms of... the next service
  // slot absorbs it -> 8ms blocked. Starting at the 3ms run: 3 blocked +
  // 2 service + 4 of the 8ms run = 7ms blocked. So 8ms wins.
  EXPECT_EQ(m.interference(Duration::ms(9)), Duration::ms(8));
  // Worst 12ms window: start at 3ms run: 3 + 2(svc) + 7 = 12 -> 10 blocked;
  // start at 8ms run: 8 + 1(svc) + 3 = 12 -> 11 blocked.
  EXPECT_EQ(m.interference(Duration::ms(12)), Duration::ms(11));
}

}  // namespace
}  // namespace rthv::analysis
