#include "analysis/busy_window.hpp"

#include <gtest/gtest.h>

namespace rthv::analysis {
namespace {

using sim::Duration;

TEST(BusyWindowSolverTest, NoInterferenceIsLinear) {
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(10);
  BusyWindowSolver solver(p);
  EXPECT_EQ(solver.busy_time(1), Duration::us(10));
  EXPECT_EQ(solver.busy_time(5), Duration::us(50));
}

TEST(BusyWindowSolverTest, ClassicResponseTimeExample) {
  // Two higher-priority periodic interferers: tau1 (C=1, T=4), tau2 (C=2,
  // T=6); analyzed task C=3. Classic fixed-point: R = 3 + eta1(R)*1 +
  // eta2(R)*2 -> well-known result R(1) ... compute: W = 3 +
  // ceil(W/4)*1 + ceil(W/6)*2. W=3: 3+1+2=6; W=6: 3+2+2=7; W=7: 3+2+4=9;
  // W=9: 3+3+4=10; W=10: 3+3+4=10. Fixed point 10.
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(3);
  p.interference.push_back(load_interference(
      ArrivalCurve(make_sporadic(Duration::us(4))), Duration::us(1)));
  p.interference.push_back(load_interference(
      ArrivalCurve(make_sporadic(Duration::us(6))), Duration::us(2)));
  BusyWindowSolver solver(p);
  const auto w = solver.busy_time(1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, Duration::us(10));
}

TEST(BusyWindowSolverTest, DivergesUnderOverload) {
  // Interferer demands 2us every 1us: utilization 200%.
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(1);
  p.interference.push_back(load_interference(
      ArrivalCurve(make_sporadic(Duration::us(1))), Duration::us(2)));
  p.divergence_cap = Duration::ms(10);
  BusyWindowSolver solver(p);
  EXPECT_FALSE(solver.busy_time(1).has_value());
}

TEST(BusyWindowSolverTest, MultipleQScaleSuperlinearlyUnderInterference) {
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(10);
  p.interference.push_back(load_interference(
      ArrivalCurve(make_sporadic(Duration::us(100))), Duration::us(30)));
  BusyWindowSolver solver(p);
  const auto w1 = solver.busy_time(1);
  const auto w2 = solver.busy_time(2);
  ASSERT_TRUE(w1 && w2);
  EXPECT_GT(*w2, *w1);
  EXPECT_GE(*w2, *w1 + Duration::us(10));
}

TEST(ResponseTimeTest, SingleActivationBusyPeriod) {
  // Own stream sparse enough that the busy period holds one activation.
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(10);
  const SporadicModel own(Duration::ms(1));
  const auto r = response_time(p, own);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->q_max, 1u);
  EXPECT_EQ(r->critical_q, 1u);
  EXPECT_EQ(r->worst_case, Duration::us(10));
}

TEST(ResponseTimeTest, MultiActivationBusyPeriod) {
  // Own events every 10us, each costing 8us, plus an interferer burning
  // 5us every 30us: the busy period spans several activations.
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(8);
  p.interference.push_back(load_interference(
      ArrivalCurve(make_sporadic(Duration::us(30))), Duration::us(5)));
  const SporadicModel own(Duration::us(10));
  const auto r = response_time(p, own);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->q_max, 1u);
  // W(q) - delta(q) is the per-activation response; the worst case must be
  // at least the single-activation one.
  EXPECT_GE(r->worst_case, Duration::us(13));
  EXPECT_EQ(r->busy_times.size(), r->q_max);
}

TEST(ResponseTimeTest, OverloadReturnsNullopt) {
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(20);
  p.divergence_cap = Duration::ms(10);
  const SporadicModel own(Duration::us(10));  // own utilization 200%
  EXPECT_FALSE(response_time(p, own).has_value());
}

TEST(ResponseTimeTest, WindowDependentTermHandled) {
  // A TDMA-like blocking term: ceil(W / 100us) * 60us.
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(10);
  p.interference.push_back([](Duration w) {
    return Duration::us(60) * sim::Duration::ceil_div(w, Duration::us(100));
  });
  const SporadicModel own(Duration::ms(10));
  const auto r = response_time(p, own);
  ASSERT_TRUE(r.has_value());
  // W(1) = 10 + 60 = 70 (ceil(70/100) = 1, stable).
  EXPECT_EQ(r->worst_case, Duration::us(70));
}

TEST(ResponseTimeTest, BusyTimesAreMonotoneInQ) {
  BusyWindowProblem p;
  p.per_event_cost = Duration::us(7);  // util 0.7 + 0.15 interference < 1
  p.interference.push_back(load_interference(
      ArrivalCurve(make_sporadic(Duration::us(40))), Duration::us(6)));
  const SporadicModel own(Duration::us(10));
  const auto r = response_time(p, own);
  ASSERT_TRUE(r.has_value());
  for (std::size_t i = 1; i < r->busy_times.size(); ++i) {
    EXPECT_GT(r->busy_times[i], r->busy_times[i - 1]);
  }
}

}  // namespace
}  // namespace rthv::analysis
