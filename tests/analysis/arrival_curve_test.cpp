#include "analysis/arrival_curve.hpp"

#include <gtest/gtest.h>

namespace rthv::analysis {
namespace {

using sim::Duration;

TEST(ArrivalCurveTest, ZeroWindowHasNoEvents) {
  ArrivalCurve eta(make_sporadic(Duration::us(10)));
  EXPECT_EQ(eta(Duration::zero()), 0u);
  EXPECT_EQ(eta(Duration::us(-5)), 0u);
}

TEST(ArrivalCurveTest, SporadicMatchesCeil) {
  // eta+(dt) = ceil(dt / d) for a sporadic stream (half-open windows).
  ArrivalCurve eta(make_sporadic(Duration::us(10)));
  EXPECT_EQ(eta(Duration::ns(1)), 1u);
  EXPECT_EQ(eta(Duration::us(10)), 1u);
  EXPECT_EQ(eta(Duration::us(10) + Duration::ns(1)), 2u);
  EXPECT_EQ(eta(Duration::us(95)), 10u);
  EXPECT_EQ(eta(Duration::us(100)), 10u);
  EXPECT_EQ(eta(Duration::us(101)), 11u);
}

TEST(ArrivalCurveTest, PeriodicWithJitter) {
  // P = 10us, J = 4us: delta(2) = 6us, delta(3) = 16us.
  ArrivalCurve eta(make_periodic(Duration::us(10), Duration::us(4)));
  EXPECT_EQ(eta(Duration::us(6)), 1u);
  EXPECT_EQ(eta(Duration::us(7)), 2u);
  EXPECT_EQ(eta(Duration::us(16)), 2u);
  EXPECT_EQ(eta(Duration::us(17)), 3u);
}

TEST(ArrivalCurveTest, LargeWindowsScaleLinearly) {
  ArrivalCurve eta(make_sporadic(Duration::us(10)));
  EXPECT_EQ(eta(Duration::s(1)), 100'000u);
  EXPECT_EQ(eta(Duration::s(10)), 1'000'000u);
}

TEST(ArrivalCurveTest, ConsistentWithDeltaPseudoInverse) {
  // For every q: eta+(delta(q)) < q <= eta+(delta(q) + 1ns) when delta is
  // strictly increasing past q = 1.
  auto delta = make_periodic(Duration::us(50), Duration::us(20));
  ArrivalCurve eta(delta);
  for (std::uint64_t q = 2; q < 50; ++q) {
    const Duration d = (*delta)(q);
    EXPECT_LT(eta(d), q) << "q=" << q;
    EXPECT_GE(eta(d + Duration::ns(1)), q) << "q=" << q;
  }
}

TEST(ArrivalCurveTest, VectorModelCurve) {
  auto delta = std::make_shared<VectorModel>(
      std::vector<Duration>{Duration::us(10), Duration::us(100)});
  ArrivalCurve eta(delta);
  // Window of 100us: delta(3) = 100 is NOT < 100, so only 2 events.
  EXPECT_EQ(eta(Duration::us(100)), 2u);
  EXPECT_EQ(eta(Duration::us(101)), 3u);
  // 200us window: delta(5) = 200 -> 4 events.
  EXPECT_EQ(eta(Duration::us(200)), 4u);
}

TEST(ArrivalCurveTest, MonotoneInWindow) {
  ArrivalCurve eta(make_periodic(Duration::us(33), Duration::us(12)));
  std::uint64_t prev = 0;
  for (std::int64_t us = 0; us < 1000; us += 7) {
    const auto v = eta(Duration::us(us));
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace rthv::analysis
