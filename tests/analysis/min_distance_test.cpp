#include "analysis/min_distance.hpp"

#include <gtest/gtest.h>

namespace rthv::analysis {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(SporadicModelTest, ZeroForFirstEvent) {
  SporadicModel m(Duration::us(10));
  EXPECT_EQ(m(0), Duration::zero());
  EXPECT_EQ(m(1), Duration::zero());
}

TEST(SporadicModelTest, LinearInQ) {
  SporadicModel m(Duration::us(10));
  EXPECT_EQ(m(2), Duration::us(10));
  EXPECT_EQ(m(5), Duration::us(40));
  EXPECT_EQ(m(101), Duration::us(1000));
}

TEST(PeriodicJitterModelTest, PureperiodicIsLinear) {
  PeriodicJitterModel m(Duration::ms(5), Duration::zero());
  EXPECT_EQ(m(2), Duration::ms(5));
  EXPECT_EQ(m(4), Duration::ms(15));
}

TEST(PeriodicJitterModelTest, JitterShrinksDistances) {
  PeriodicJitterModel m(Duration::ms(5), Duration::ms(2));
  EXPECT_EQ(m(2), Duration::ms(3));   // P - J
  EXPECT_EQ(m(3), Duration::ms(8));   // 2P - J
}

TEST(PeriodicJitterModelTest, JitterLargerThanPeriodClampedByDmin) {
  PeriodicJitterModel m(Duration::ms(5), Duration::ms(12), Duration::us(100));
  EXPECT_EQ(m(2), Duration::us(100));           // (q-1)P - J < 0 -> d_min floor
  EXPECT_EQ(m(3), Duration::us(200));           // 10 - 12 < 0.2ms floor
  EXPECT_EQ(m(4), Duration::ms(3));             // 15 - 12 = 3ms > 0.3ms
}

TEST(PeriodicJitterModelTest, NeverNegative) {
  PeriodicJitterModel m(Duration::ms(1), Duration::ms(10));
  for (std::uint64_t q = 0; q < 12; ++q) {
    EXPECT_GE(m(q), Duration::zero()) << "q=" << q;
  }
}

TEST(VectorModelTest, DirectEntriesReturned) {
  VectorModel m({Duration::us(10), Duration::us(50), Duration::us(60)});
  EXPECT_EQ(m(2), Duration::us(10));
  EXPECT_EQ(m(3), Duration::us(50));
  EXPECT_EQ(m(4), Duration::us(60));
}

TEST(VectorModelTest, SuperadditiveExtensionBeyondVector) {
  VectorModel m({Duration::us(10), Duration::us(50)});
  // l = 2, delta(3) = 50 covers 2 gaps. q = 5 -> 4 gaps = 2 blocks -> 100.
  EXPECT_EQ(m(5), Duration::us(100));
  // q = 4 -> 3 gaps = 1 block (2 gaps, 50) + 1 gap (10) = 60.
  EXPECT_EQ(m(4), Duration::us(60));
  // q = 6 -> 5 gaps = 2 blocks + 1 gap = 110.
  EXPECT_EQ(m(6), Duration::us(110));
}

TEST(VectorModelTest, ExtensionIsMonotone) {
  VectorModel m({Duration::us(10), Duration::us(25), Duration::us(70)});
  Duration prev = Duration::zero();
  for (std::uint64_t q = 1; q < 40; ++q) {
    EXPECT_GE(m(q), prev) << "q=" << q;
    prev = m(q);
  }
}

TEST(TraceModelTest, ExactSpansFromTrace) {
  const std::vector<TimePoint> trace{
      TimePoint::at_us(0), TimePoint::at_us(10), TimePoint::at_us(15),
      TimePoint::at_us(40)};
  TraceModel m(trace);
  EXPECT_EQ(m(2), Duration::us(5));   // 10->15
  EXPECT_EQ(m(3), Duration::us(15));  // 0..15
  EXPECT_EQ(m(4), Duration::us(40));  // whole trace
}

TEST(TraceModelTest, ExtensionRepeatsWholeTraceSpan) {
  const std::vector<TimePoint> trace{TimePoint::at_us(0), TimePoint::at_us(10),
                                     TimePoint::at_us(30)};
  TraceModel m(trace);
  // Whole trace: 2 gaps, 30us. q=5 -> 4 gaps -> 2 blocks -> 60us.
  EXPECT_EQ(m(5), Duration::us(60));
  // q=4 -> 3 gaps -> 1 block (30) + delta(2)=10 -> 40us.
  EXPECT_EQ(m(4), Duration::us(40));
}

TEST(TraceModelTest, MinOverSlidingWindows) {
  // Bursty trace: the minimum 3-event span is inside the burst.
  const std::vector<TimePoint> trace{TimePoint::at_us(0), TimePoint::at_us(100),
                                     TimePoint::at_us(101), TimePoint::at_us(102),
                                     TimePoint::at_us(200)};
  TraceModel m(trace);
  EXPECT_EQ(m(2), Duration::us(1));
  EXPECT_EQ(m(3), Duration::us(2));    // 100..102
  EXPECT_EQ(m(4), Duration::us(100));  // 100..200 (0..102 is 102)
}

TEST(FactoryTest, MakersReturnWorkingModels) {
  auto s = make_sporadic(Duration::us(7));
  EXPECT_EQ((*s)(3), Duration::us(14));
  auto p = make_periodic(Duration::ms(2), Duration::us(500));
  EXPECT_EQ((*p)(2), Duration::us(1500));
}

}  // namespace
}  // namespace rthv::analysis
