#include "analysis/irq_latency.hpp"

#include <gtest/gtest.h>

namespace rthv::analysis {
namespace {

using sim::Duration;

// The paper's evaluation platform constants (Section 6).
OverheadTimes paper_overheads() {
  return OverheadTimes{
      Duration::ns(640),    // C_Mon: 128 instr @ 5 ns
      Duration::ns(4385),   // C_sched: 877 instr
      Duration::us(50),     // C_ctx: 5000 instr + 5000 cycles
  };
}

TdmaModel paper_tdma() {
  return TdmaModel{Duration::us(14000), Duration::us(6000)};
}

IrqSourceModel paper_source(Duration d_min) {
  return IrqSourceModel{make_sporadic(d_min), Duration::us(5), Duration::us(40)};
}

TEST(EffectiveCostsTest, Eq13AndEq15) {
  const auto oh = paper_overheads();
  // Eq. 13: C'_BH = 40 + 4.385 + 2*50 = 144.385 us.
  EXPECT_EQ(effective_bottom_cost(Duration::us(40), oh), Duration::ns(144'385));
  // Eq. 15: C'_TH = 5 + 0.64 = 5.64 us.
  EXPECT_EQ(effective_top_cost(Duration::us(5), oh), Duration::ns(5'640));
}

TEST(TdmaInterferenceTest, Eq8) {
  const auto tdma = paper_tdma();
  // One cycle of blocking: T_TDMA - T_i = 8000 us.
  EXPECT_EQ(tdma_interference(Duration::us(1), tdma), Duration::us(8000));
  EXPECT_EQ(tdma_interference(Duration::us(14000), tdma), Duration::us(8000));
  EXPECT_EQ(tdma_interference(Duration::us(14001), tdma), Duration::us(16000));
  EXPECT_EQ(tdma_interference(Duration::zero(), tdma), Duration::zero());
}

TEST(InterposedInterferenceTest, Eq14) {
  const Duration c_bh_eff = Duration::ns(144'385);
  const Duration d_min = Duration::us(1000);
  EXPECT_EQ(interposed_interference(Duration::us(1), d_min, c_bh_eff), c_bh_eff);
  EXPECT_EQ(interposed_interference(Duration::us(1000), d_min, c_bh_eff), c_bh_eff);
  EXPECT_EQ(interposed_interference(Duration::us(2500), d_min, c_bh_eff),
            c_bh_eff * 3);
  EXPECT_EQ(interposed_interference(Duration::zero(), d_min, c_bh_eff),
            Duration::zero());
}

TEST(InterposedInterferenceTest, VectorGeneralization) {
  // Monitoring condition: consecutive >= 100us AND any 3 span >= 1000us.
  const VectorModel delta({Duration::us(100), Duration::us(1000)});
  const Duration c = Duration::us(10);
  // In 1000us at most 2 admissions (delta(3) = 1000 not < 1000).
  EXPECT_EQ(interposed_interference(Duration::us(1000), delta, c), c * 2);
  EXPECT_EQ(interposed_interference(Duration::us(1001), delta, c), c * 3);
  // The vector bound is tighter than the pure d_min bound would be.
  EXPECT_LT(interposed_interference(Duration::us(1000), delta, c),
            interposed_interference(Duration::us(1000), Duration::us(100), c));
}

TEST(TdmaLatencyTest, DominatedByTdmaCycle) {
  // Paper Section 4: with C_TH, C_BH << T_TDMA - T_i the worst-case latency
  // is dominated by the TDMA blocking term.
  const auto r = tdma_latency(paper_source(Duration::us(14'400)), {}, paper_tdma(),
                              paper_overheads(), false);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->worst_case, Duration::us(8000));
  EXPECT_LT(r->worst_case, Duration::us(14000));
}

TEST(TdmaLatencyTest, MonitoringAddsTopHandlerCost) {
  const auto src = paper_source(Duration::us(14'400));
  const auto without = tdma_latency(src, {}, paper_tdma(), paper_overheads(), false);
  const auto with = tdma_latency(src, {}, paper_tdma(), paper_overheads(), true);
  ASSERT_TRUE(without && with);
  EXPECT_GE(with->worst_case, without->worst_case);
  EXPECT_LE(with->worst_case, without->worst_case + Duration::us(1));
}

TEST(InterposedLatencyTest, IndependentOfTdmaAndMuchSmaller) {
  const auto src = paper_source(Duration::us(1444));
  const auto interposed = interposed_latency(src, {}, paper_overheads());
  const auto delayed = tdma_latency(src, {}, paper_tdma(), paper_overheads(), true);
  ASSERT_TRUE(interposed && delayed);
  // Eq. 16 has no TDMA term: W(1) = C'_BH + C'_TH = 144.385 + 5.64 us.
  EXPECT_EQ(interposed->worst_case, Duration::ns(150'025));
  // The paper's headline: interposed WCRT is far below the TDMA-bound one.
  EXPECT_LT(interposed->worst_case * 10, delayed->worst_case);
}

TEST(InterposedLatencyTest, OtherTopHandlersInterfere) {
  const auto src = paper_source(Duration::us(1444));
  std::vector<IrqSourceModel> others;
  others.push_back(IrqSourceModel{make_sporadic(Duration::us(100)),
                                  Duration::us(5), Duration::us(40)});
  const auto alone = interposed_latency(src, {}, paper_overheads());
  const auto contended = interposed_latency(src, others, paper_overheads());
  ASSERT_TRUE(alone && contended);
  EXPECT_GT(contended->worst_case, alone->worst_case);
}

TEST(InterposedLatencyTest, DivergesWhenDminTooSmall) {
  // C'_BH = 144.385us every 100us is > 100% load.
  const auto r = interposed_latency(paper_source(Duration::us(100)), {},
                                    paper_overheads());
  EXPECT_FALSE(r.has_value());
}

TEST(TdmaLatencyTest, DenseArrivalsGrowBusyPeriod) {
  // d_min = 5000us < worst-case latency: several activations per busy
  // period, and the analysis must still converge (service 40us per 5000us
  // is far below the subscriber's slot share).
  const auto r = tdma_latency(paper_source(Duration::us(5000)), {}, paper_tdma(),
                              paper_overheads(), false);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->q_max, 1u);
}

}  // namespace
}  // namespace rthv::analysis
