#include <gtest/gtest.h>

#include "analysis/arrival_curve.hpp"
#include "analysis/min_distance.hpp"

namespace rthv::analysis {
namespace {

using sim::Duration;

TEST(BurstModelTest, WithinBurstUsesInnerDistance) {
  // Bursts of 4 every 1 ms, 50 us apart inside.
  BurstModel m(Duration::ms(1), 4, Duration::us(50));
  EXPECT_EQ(m(1), Duration::zero());
  EXPECT_EQ(m(2), Duration::us(50));
  EXPECT_EQ(m(3), Duration::us(100));
  EXPECT_EQ(m(4), Duration::us(150));
}

TEST(BurstModelTest, AcrossBurstsUsesOuterPeriod) {
  BurstModel m(Duration::ms(1), 4, Duration::us(50));
  EXPECT_EQ(m(5), Duration::ms(1));                     // next burst start
  EXPECT_EQ(m(6), Duration::ms(1) + Duration::us(50));
  EXPECT_EQ(m(9), Duration::ms(2));
}

TEST(BurstModelTest, SizeOneDegeneratesToPeriodic) {
  BurstModel burst(Duration::ms(2), 1, Duration::us(1));
  PeriodicJitterModel periodic(Duration::ms(2), Duration::zero());
  for (std::uint64_t q = 1; q < 20; ++q) {
    EXPECT_EQ(burst(q), periodic(q)) << "q=" << q;
  }
}

TEST(BurstModelTest, ArrivalCurveCountsBursts) {
  auto m = make_bursty(Duration::ms(1), 4, Duration::us(50));
  ArrivalCurve eta(m);
  // A tiny window catches a whole burst (inner distances < window).
  EXPECT_EQ(eta(Duration::us(200)), 4u);
  // One period + epsilon catches two bursts.
  EXPECT_EQ(eta(Duration::ms(1) + Duration::us(200)), 8u);
  EXPECT_EQ(eta(Duration::us(40)), 1u);
  EXPECT_EQ(eta(Duration::us(51)), 2u);
}

TEST(BurstModelTest, MonotoneAndSuperadditiveish) {
  BurstModel m(Duration::ms(1), 3, Duration::us(100));
  Duration prev = Duration::zero();
  for (std::uint64_t q = 1; q < 50; ++q) {
    EXPECT_GE(m(q), prev);
    prev = m(q);
  }
}

TEST(LongRunRateTest, SporadicRate) {
  EXPECT_NEAR(long_run_rate_hz(*make_sporadic(Duration::ms(1))), 1000.0, 1.0);
}

TEST(LongRunRateTest, BurstRateIsSizeOverPeriod) {
  EXPECT_NEAR(long_run_rate_hz(*make_bursty(Duration::ms(1), 4, Duration::us(50))),
              4000.0, 10.0);
}

TEST(LongRunRateTest, JitterDoesNotChangeLongRunRate) {
  EXPECT_NEAR(long_run_rate_hz(*make_periodic(Duration::ms(2), Duration::ms(1))),
              500.0, 1.0);
}

TEST(UtilizationTest, MatchesRateTimesCost) {
  // 1000 events/s at 100 us each = 10% utilization.
  EXPECT_NEAR(utilization(*make_sporadic(Duration::ms(1)), Duration::us(100)), 0.1,
              0.001);
  // Overload detection: 4000/s at 300us = 120%.
  EXPECT_GT(utilization(*make_bursty(Duration::ms(1), 4, Duration::us(50)),
                        Duration::us(300)),
            1.0);
}

TEST(OutputModelTest, ShrinksDistancesByResponseJitter) {
  // Periodic 10ms input processed with response jitter 2ms.
  auto out = make_output(make_periodic(Duration::ms(10)), Duration::ms(2),
                         Duration::us(100));
  EXPECT_EQ((*out)(2), Duration::ms(8));
  EXPECT_EQ((*out)(3), Duration::ms(18));
}

TEST(OutputModelTest, FlooredByServiceSpacing) {
  // Jitter larger than the input distance: consecutive outputs can be
  // back-to-back, but never closer than the service spacing.
  auto out = make_output(make_periodic(Duration::ms(1)), Duration::ms(5),
                         Duration::us(40));
  EXPECT_EQ((*out)(2), Duration::us(40));
  EXPECT_EQ((*out)(3), Duration::us(80));
  // Far out, the input's long-term rate dominates again.
  EXPECT_EQ((*out)(10), Duration::ms(4));  // 9ms - 5ms jitter
}

TEST(OutputModelTest, ZeroJitterIsIdentityAboveFloor) {
  auto in = make_sporadic(Duration::ms(1));
  auto out = make_output(in, Duration::zero(), Duration::us(10));
  for (std::uint64_t q = 1; q < 20; ++q) EXPECT_EQ((*out)(q), (*in)(q));
}

TEST(OutputModelTest, ChainsWithArrivalCurves) {
  // A downstream consumer of interposed bottom-handler outputs: input
  // d_min = 1444us, response in [100.025, 150.025]us -> jitter 50us.
  auto out = make_output(make_sporadic(Duration::us(1444)), Duration::us(50),
                         Duration::us(40));
  ArrivalCurve eta(out);
  // Over a short window the output can be slightly denser than the input.
  EXPECT_EQ(eta(Duration::us(1400)), 2u);  // delta_out(2) = 1394 < 1400
  // Long-run rate is unchanged.
  EXPECT_NEAR(long_run_rate_hz(*out), long_run_rate_hz(*make_sporadic(Duration::us(1444))),
              1.0);
}

}  // namespace
}  // namespace rthv::analysis
