#include "analysis/chain.hpp"

#include <gtest/gtest.h>

namespace rthv::analysis {
namespace {

using sim::Duration;

GatewayChain paper_chain(bool interposed, Duration d_min) {
  GatewayChain c;
  c.irq = IrqSourceModel{make_sporadic(d_min), Duration::us(5), Duration::us(40)};
  c.overheads = OverheadTimes{Duration::ns(640), Duration::ns(4385), Duration::us(50)};
  c.interposed = interposed;
  c.tdma = TdmaModel{Duration::us(14000), Duration::us(6000), Duration::from_us_f(50.5)};
  // Consumer partition: partition 1's geometry, one 200us handler task.
  c.consumer.service = SlotTableModel::single_slot(
      Duration::us(14000), Duration::us(6000), Duration::from_us_f(50.5));
  c.consumer.tasks.push_back(GuestTaskModel{"consumer", 1, Duration::us(200),
                                            make_sporadic(d_min)});
  c.consumer_index = 0;
  return c;
}

TEST(GatewayChainTest, ComposesBothStages) {
  const auto r = gateway_chain_latency(paper_chain(true, Duration::us(1444)));
  ASSERT_TRUE(r.has_value());
  // Stage 1 = Eq. 16 result for the paper source.
  EXPECT_EQ(r->irq_stage, Duration::ns(150'025));
  EXPECT_EQ(r->irq_jitter, Duration::ns(150'025 - 45'000));
  EXPECT_GT(r->consumer_stage, Duration::us(8000));  // consumer is TDMA-bound
  EXPECT_EQ(r->end_to_end, r->irq_stage + r->consumer_stage);
}

TEST(GatewayChainTest, InterposedChainBeatsDelayedChain) {
  const auto fast = gateway_chain_latency(paper_chain(true, Duration::us(1444)));
  const auto slow = gateway_chain_latency(paper_chain(false, Duration::us(1444)));
  ASSERT_TRUE(fast && slow);
  EXPECT_LT(fast->end_to_end, slow->end_to_end);
  // The gap is the IRQ-stage gap minus second-order jitter effects; it must
  // be most of the 8ms TDMA wait.
  EXPECT_GT(slow->end_to_end - fast->end_to_end, Duration::us(6000));
}

TEST(GatewayChainTest, JitterPropagationMatters) {
  // The delayed chain's consumer faces a burstier activation stream (large
  // jitter) and therefore a WCRT at least as large as the interposed
  // chain's consumer stage.
  const auto fast = gateway_chain_latency(paper_chain(true, Duration::us(1444)));
  const auto slow = gateway_chain_latency(paper_chain(false, Duration::us(1444)));
  ASSERT_TRUE(fast && slow);
  EXPECT_GT(slow->irq_jitter, fast->irq_jitter);
  EXPECT_GE(slow->consumer_stage, fast->consumer_stage);
}

TEST(GatewayChainTest, OverloadedConsumerDiverges) {
  auto chain = paper_chain(true, Duration::us(1444));
  chain.consumer.tasks[0].wcet = Duration::ms(5);  // > partition share
  EXPECT_FALSE(gateway_chain_latency(chain).has_value());
}

TEST(GatewayChainTest, SparserIrqsShrinkConsumerStage) {
  const auto dense = gateway_chain_latency(paper_chain(true, Duration::us(1444)));
  const auto sparse = gateway_chain_latency(paper_chain(true, Duration::us(14440)));
  ASSERT_TRUE(dense && sparse);
  EXPECT_LE(sparse->consumer_stage, dense->consumer_stage);
}

}  // namespace
}  // namespace rthv::analysis
