// Regression tests for the checked-arithmetic migration of the analysis
// layer: extreme-but-valid parameters (tiny d_min, huge windows/costs,
// near-overflow T_TDMA) must raise core::ArithmeticError instead of
// silently wrapping into a plausible-looking bound. Every test here must
// pass in Debug and Release builds alike -- the checked_* helpers throw in
// all build modes, so none of these paths rely on assert().
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/arrival_curve.hpp"
#include "analysis/busy_window.hpp"
#include "analysis/irq_latency.hpp"
#include "analysis/min_distance.hpp"
#include "core/checked.hpp"
#include "sim/time.hpp"

namespace core = rthv::core;
using namespace rthv::analysis;
using rthv::sim::Duration;

namespace {

constexpr std::int64_t kMaxNs = std::numeric_limits<std::int64_t>::max();

TEST(OverflowRegression, ArrivalCurveNonConvergenceIsDomainError) {
  // d_min = 1 ns and a multi-hour window push eta past the 2^40 search cap:
  // the pseudo-inverse cannot converge and must say so.
  const ArrivalCurve eta(make_sporadic(Duration::ns(1)));
  EXPECT_THROW((void)eta(Duration::s(10'000)), core::TickDomainError);
}

TEST(OverflowRegression, LoadInterferenceOverflowsLoudly) {
  // eta(dt) ~ 5e11 events at 1 s per event is ~5e20 ns of interference --
  // far past INT64_MAX. The unchecked Eq. 7 would wrap to a small positive
  // number and the busy window would "converge" to garbage.
  const auto term = load_interference(ArrivalCurve(make_sporadic(Duration::ns(1))),
                                      Duration::s(1));
  EXPECT_THROW((void)term(Duration::s(500)), core::TickOverflow);
}

TEST(OverflowRegression, TdmaInterferenceNearOverflowCycle) {
  // T_TDMA near INT64_MAX/2: three blocked cycles inside a full-range
  // window exceed the tick range (Eq. 8 would wrap negative).
  TdmaModel tdma;
  tdma.cycle = Duration::ns(kMaxNs / 2);
  tdma.slot = Duration::ns(1);
  EXPECT_THROW((void)tdma_interference(Duration::ns(kMaxNs), tdma),
               core::TickOverflow);
}

TEST(OverflowRegression, TdmaInterferenceEntryOverheadOverflow) {
  // A pathological entry overhead makes the per-cycle blocking exceed the
  // cycle itself; ~9.2e9 cycles of ~2 s blocking each overflows.
  TdmaModel tdma;
  tdma.cycle = Duration::s(1);
  tdma.slot = Duration::ns(1);
  tdma.entry_overhead = Duration::s(1);
  EXPECT_THROW((void)tdma_interference(Duration::ns(kMaxNs), tdma),
               core::TickOverflow);
}

TEST(OverflowRegression, InterposedInterferenceTinyDminHugeWindow) {
  // Eq. 14 with d_min = 1 ns: the admitted-event count equals the window in
  // ns; multiplied by a 1 s effective bottom cost it leaves the tick range.
  EXPECT_THROW((void)interposed_interference(Duration::s(100), Duration::ns(1),
                                             Duration::s(1)),
               core::TickOverflow);
}

TEST(OverflowRegression, EffectiveCostsNearMaxOverflow) {
  OverheadTimes oh;
  oh.c_mon = Duration::ns(kMaxNs);
  oh.c_sched = Duration::zero();
  oh.c_ctx = Duration::zero();
  EXPECT_THROW((void)effective_top_cost(Duration::ns(1), oh), core::TickOverflow);
  oh.c_mon = Duration::zero();
  oh.c_ctx = Duration::ns(kMaxNs / 2 + 1);
  EXPECT_THROW((void)effective_bottom_cost(Duration::zero(), oh),
               core::TickOverflow);
}

TEST(OverflowRegression, BusyWindowIterationDetectsOverflow) {
  // With the divergence cap lifted, the fixed point of a 1 s per-event cost
  // against a d_min = 1 ns interferer explodes within two iterations. The
  // old code wrapped and kept iterating on garbage; now the iteration
  // surfaces an ArithmeticError (overflowed multiply or non-convergent
  // arrival-curve inversion, whichever trips first).
  BusyWindowProblem problem;
  problem.per_event_cost = Duration::s(1);
  problem.interference.push_back(
      load_interference(ArrivalCurve(make_sporadic(Duration::ns(1))), Duration::s(1)));
  problem.divergence_cap = Duration::ns(kMaxNs);
  const auto own = make_sporadic(Duration::ms(1));
  EXPECT_THROW((void)response_time(problem, *own), core::ArithmeticError);
}

TEST(OverflowRegression, TdmaLatencyExtremeCostsThrowInsteadOfWrapping) {
  // Full Eq. 11 pipeline: a 100 s top handler fed by a 1 ns-spaced stream
  // overflows inside the very first rhs evaluation, before the divergence
  // cap can hide it.
  IrqSourceModel own;
  own.activation = make_sporadic(Duration::ns(1));
  own.c_top = Duration::s(100);
  own.c_bottom = Duration::s(1);
  TdmaModel tdma;
  tdma.cycle = Duration::ms(1);
  tdma.slot = Duration::us(1);
  OverheadTimes oh{};
  EXPECT_THROW((void)tdma_latency(own, {}, tdma, oh, false), core::ArithmeticError);
}

TEST(OverflowRegression, SaneParametersStillConverge) {
  // Non-regression: the checked migration must not change results for the
  // paper-scale parameter ranges (microsecond costs, millisecond periods).
  IrqSourceModel own;
  own.activation = make_sporadic(Duration::ms(1));
  own.c_top = Duration::us(5);
  own.c_bottom = Duration::us(20);
  TdmaModel tdma;
  tdma.cycle = Duration::ms(10);
  tdma.slot = Duration::ms(2);
  OverheadTimes oh;
  oh.c_mon = Duration::us(1);
  oh.c_sched = Duration::us(2);
  oh.c_ctx = Duration::us(3);
  const auto r = tdma_latency(own, {}, tdma, oh, false);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->worst_case, Duration::zero());
  const auto i = interposed_latency(own, {}, oh);
  ASSERT_TRUE(i.has_value());
  EXPECT_GT(i->worst_case, Duration::zero());
  // Interposed handling removes the TDMA blocking term (the paper's point).
  EXPECT_LT(i->worst_case, r->worst_case);
}

}  // namespace
