#include "analysis/task_wcrt.hpp"

#include <gtest/gtest.h>

namespace rthv::analysis {
namespace {

using sim::Duration;

PartitionTaskAnalysis base_model() {
  PartitionTaskAnalysis m;
  // Paper geometry: partition owns 6000us of a 14000us cycle, 50.5us entry.
  m.service = SlotTableModel::single_slot(Duration::us(14000), Duration::us(6000),
                                          Duration::from_us_f(50.5));
  return m;
}

TEST(TaskWcrtTest, SingleTaskNoInterference) {
  auto m = base_model();
  m.tasks.push_back(GuestTaskModel{"t", 1, Duration::us(500),
                                   make_periodic(Duration::ms(50))});
  const auto r = task_wcrt(m, 0);
  ASSERT_TRUE(r.has_value());
  // Worst case: released right as the slot ends -> 8000 blocked + 50.5
  // entry + 500 execution.
  EXPECT_EQ(*r, Duration::from_us_f(8550.5));
}

TEST(TaskWcrtTest, HigherPriorityTaskInterferes) {
  auto m = base_model();
  m.tasks.push_back(GuestTaskModel{"hi", 1, Duration::us(300),
                                   make_periodic(Duration::ms(20))});
  m.tasks.push_back(GuestTaskModel{"lo", 5, Duration::us(500),
                                   make_periodic(Duration::ms(50))});
  const auto hi = task_wcrt(m, 0);
  const auto lo = task_wcrt(m, 1);
  ASSERT_TRUE(hi && lo);
  EXPECT_EQ(*hi, Duration::from_us_f(8350.5));
  // lo additionally suffers one hi activation.
  EXPECT_EQ(*lo, Duration::from_us_f(8850.5));
}

TEST(TaskWcrtTest, LowerPriorityTaskDoesNotInterfere) {
  auto m = base_model();
  m.tasks.push_back(GuestTaskModel{"hi", 1, Duration::us(300),
                                   make_periodic(Duration::ms(20))});
  m.tasks.push_back(GuestTaskModel{"lo", 5, Duration::us(500),
                                   make_periodic(Duration::ms(50))});
  auto without_lo = base_model();
  without_lo.tasks.push_back(m.tasks[0]);
  EXPECT_EQ(task_wcrt(m, 0), task_wcrt(without_lo, 0));
}

TEST(TaskWcrtTest, ForeignInterpositionsDegradeBounded) {
  // Eq. 14's promise made concrete: admitting interposed IRQs every d_min
  // with cost C'_BH raises the victim task's WCRT by a bounded amount.
  auto clean = base_model();
  clean.tasks.push_back(GuestTaskModel{"victim", 1, Duration::us(500),
                                       make_periodic(Duration::ms(50))});
  auto with_interpositions = clean;
  with_interpositions.foreign_interpositions.push_back(BottomHandlerLoad{
      Duration::from_us_f(144.385), make_sporadic(Duration::us(1444))});

  const auto before = task_wcrt(clean, 0);
  const auto after = task_wcrt(with_interpositions, 0);
  ASSERT_TRUE(before && after);
  EXPECT_GT(*after, *before);
  // In a ~9.5ms busy window at most ceil(w/1444) ~ 7 interpositions land:
  // the degradation is bounded by ~7 * 144.4us ~ 1011us.
  EXPECT_LE(*after, *before + Duration::us(1100));
}

TEST(TaskWcrtTest, OwnBottomHandlersInterfereWithAllPriorities) {
  auto m = base_model();
  m.own_bottom_handlers.push_back(
      BottomHandlerLoad{Duration::us(40), make_sporadic(Duration::us(2000))});
  m.tasks.push_back(GuestTaskModel{"hi", 0, Duration::us(300),
                                   make_periodic(Duration::ms(20))});
  const auto r = task_wcrt(m, 0);
  ASSERT_TRUE(r.has_value());
  // Even the highest-priority task pays for queue draining.
  auto clean = base_model();
  clean.tasks.push_back(m.tasks[0]);
  EXPECT_GT(*r, *task_wcrt(clean, 0));
}

TEST(TaskWcrtTest, OverloadYieldsNullopt) {
  auto m = base_model();
  // 5ms of work every 10ms against 6/14 service share (~43%): infeasible.
  m.tasks.push_back(GuestTaskModel{"hog", 1, Duration::ms(5),
                                   make_periodic(Duration::ms(10))});
  EXPECT_FALSE(task_wcrt(m, 0).has_value());
}

TEST(TaskWcrtTest, SplitSlotsImproveTaskLatency) {
  auto one = base_model();
  one.tasks.push_back(GuestTaskModel{"t", 1, Duration::us(200),
                                     make_periodic(Duration::ms(50))});
  auto split = one;
  split.service = SlotTableModel::evenly_split(Duration::us(14000), Duration::us(6000),
                                               4, Duration::from_us_f(50.5));
  const auto r_one = task_wcrt(one, 0);
  const auto r_split = task_wcrt(split, 0);
  ASSERT_TRUE(r_one && r_split);
  EXPECT_LT(*r_split, *r_one);
}

TEST(TaskWcrtTest, AnalyzeAllTasksCoversEveryTask) {
  auto m = base_model();
  m.tasks.push_back(GuestTaskModel{"a", 1, Duration::us(100),
                                   make_periodic(Duration::ms(10))});
  m.tasks.push_back(GuestTaskModel{"b", 2, Duration::us(100),
                                   make_periodic(Duration::ms(10))});
  const auto all = analyze_all_tasks(m);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].task, "a");
  ASSERT_TRUE(all[0].wcrt && all[1].wcrt);
  EXPECT_LE(*all[0].wcrt, *all[1].wcrt);
}

TEST(TaskWcrtTest, EqualPrioritiesInterfereMutually) {
  auto m = base_model();
  m.tasks.push_back(GuestTaskModel{"a", 3, Duration::us(200),
                                   make_periodic(Duration::ms(20))});
  m.tasks.push_back(GuestTaskModel{"b", 3, Duration::us(300),
                                   make_periodic(Duration::ms(20))});
  const auto a = task_wcrt(m, 0);
  const auto b = task_wcrt(m, 1);
  ASSERT_TRUE(a && b);
  // Each suffers the other's load (conservative FIFO-among-equals model).
  EXPECT_EQ(*a, Duration::from_us_f(8550.5));
  EXPECT_EQ(*b, Duration::from_us_f(8550.5));
}

}  // namespace
}  // namespace rthv::analysis
