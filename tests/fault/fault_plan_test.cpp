#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rthv::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

FaultPlan parse(const std::string& text) {
  std::istringstream in(text);
  return load_fault_plan(in);
}

TEST(FaultPlanTest, ParsesStormSection) {
  const auto plan = parse(
      "# comment\n"
      "[storm]\n"
      "source = 1\n"
      "start_ms = 50\n"
      "bursts = 20\n"
      "burst_len = 4\n"
      "distance_us = 1444\n"
      "period_ms = 40\n");
  ASSERT_EQ(plan.injections.size(), 1u);
  const auto& s = plan.injections[0];
  EXPECT_EQ(s.kind, FaultKind::kStorm);
  EXPECT_EQ(s.source, 1u);
  EXPECT_EQ(s.start, TimePoint::at_us(50'000));
  EXPECT_EQ(s.count, 20u);
  EXPECT_EQ(s.burst_len, 4u);
  EXPECT_EQ(s.distance, Duration::us(1444));
  EXPECT_EQ(s.period, Duration::us(40'000));
}

TEST(FaultPlanTest, ParsesCampaignHorizonAndComposedSections) {
  const auto plan = parse(
      "[campaign]\n"
      "horizon_ms = 2000\n"
      "\n"
      "[drift]\n"
      "drift_ppm = 200\n"
      "jitter_us = 20\n"
      "\n"
      "[adversary]\n"
      "source = 0\n"
      "count = 100\n"
      "probe_every = 8\n"
      "probe_under_us = 100\n");
  EXPECT_EQ(plan.horizon, Duration::ms(2000));
  ASSERT_EQ(plan.injections.size(), 2u);
  EXPECT_EQ(plan.injections[0].kind, FaultKind::kDrift);
  EXPECT_EQ(plan.injections[0].drift_ppm, 200);
  EXPECT_EQ(plan.injections[0].jitter, Duration::us(20));
  EXPECT_EQ(plan.injections[1].kind, FaultKind::kAdversary);
  EXPECT_EQ(plan.injections[1].probe_every, 8u);
  EXPECT_EQ(plan.injections[1].probe_under, Duration::us(100));
}

TEST(FaultPlanTest, SectionsMayRepeat) {
  const auto plan = parse(
      "[flood]\ncount = 10\ndistance_us = 5\n"
      "[flood]\nsource = 1\ncount = 20\ndistance_us = 7\n");
  ASSERT_EQ(plan.injections.size(), 2u);
  EXPECT_EQ(plan.injections[0].count, 10u);
  EXPECT_EQ(plan.injections[1].source, 1u);
  EXPECT_EQ(plan.injections[1].distance, Duration::us(7));
}

TEST(FaultPlanTest, UnknownSectionReportsLine) {
  try {
    parse("[storm]\nbursts = 1\ndistance_us = 1\n\n[meteor]\n");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& e) {
    EXPECT_EQ(e.line(), 5u);
  }
}

TEST(FaultPlanTest, UnknownKeyForKindReportsLine) {
  // drift_ppm belongs to [drift], not [storm].
  try {
    parse("[storm]\nbursts = 1\ndistance_us = 1\ndrift_ppm = 5\n");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& e) {
    EXPECT_EQ(e.line(), 4u);
  }
}

TEST(FaultPlanTest, MalformedNumberReportsLine) {
  EXPECT_THROW(parse("[flood]\ncount = many\ndistance_us = 1\n"),
               FaultPlanError);
}

TEST(FaultPlanTest, KeyOutsideAnySectionIsAnError) {
  EXPECT_THROW(parse("count = 3\n"), FaultPlanError);
}

TEST(FaultPlanTest, ValidationRejectsIncompleteSpecs) {
  // Repeated bursts without a period would all fire at one instant.
  EXPECT_THROW(parse("[storm]\nbursts = 5\n"), FaultPlanError);
  // Drift with neither skew nor jitter is a no-op plan entry.
  EXPECT_THROW(parse("[drift]\n"), FaultPlanError);
}

TEST(FaultPlanTest, SaveRoundTripsBitIdentically) {
  const std::string text =
      "[campaign]\n"
      "horizon_ms = 1000\n"
      "[storm]\n"
      "source = 0\n"
      "start_ms = 50\n"
      "bursts = 20\n"
      "burst_len = 4\n"
      "distance_us = 1444\n"
      "period_ms = 40\n"
      "[overrun]\n"
      "source = 0\n"
      "boundaries = 40\n"
      "lead_us = 30\n";
  const auto plan = parse(text);
  std::ostringstream out;
  save_fault_plan(out, plan);
  const auto reparsed = parse(out.str());
  ASSERT_EQ(reparsed.injections.size(), plan.injections.size());
  EXPECT_EQ(reparsed.horizon, plan.horizon);
  for (std::size_t i = 0; i < plan.injections.size(); ++i) {
    EXPECT_EQ(reparsed.injections[i].kind, plan.injections[i].kind) << i;
    EXPECT_EQ(reparsed.injections[i].start, plan.injections[i].start) << i;
    EXPECT_EQ(reparsed.injections[i].count, plan.injections[i].count) << i;
    EXPECT_EQ(reparsed.injections[i].distance, plan.injections[i].distance) << i;
  }
  // Saving the reparsed plan reproduces the first serialization exactly.
  std::ostringstream out2;
  save_fault_plan(out2, reparsed);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(FaultPlanTest, EveryKindHasAName) {
  for (std::uint8_t k = 0; k < static_cast<std::uint8_t>(FaultKind::kCount_); ++k) {
    EXPECT_FALSE(to_string(static_cast<FaultKind>(k)).empty());
  }
}

}  // namespace
}  // namespace rthv::fault
