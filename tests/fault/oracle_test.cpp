// Unit tests for the interference oracle on hand-built trace streams.
//
// The synthetic events let us place admissions at exact nanosecond offsets
// and pin the oracle's window semantics: eta+(dt) = ceil(dt/d_min) counts
// events in half-open windows, so the tightest window over admissions i..j
// allows floor(span/d_min) + 1 of them -- any pair strictly closer than
// d_min is already a violation, while exact d_min spacing is conforming
// with admitted/bound exactly 1.
#include "fault/oracle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/trace_event.hpp"

namespace rthv::fault {
namespace {

using obs::TraceCategory;
using obs::TraceEvent;
using obs::TracePoint;
using sim::Duration;

constexpr std::int64_t kUs = 1000;

OracleSourceParams params_us(std::int64_t d_min_us, std::int64_t c_bh_eff_us = 200,
                             std::int64_t pre_cost_us = 30) {
  OracleSourceParams p;
  p.source = 0;
  p.d_min = Duration::us(d_min_us);
  p.c_bh_eff = Duration::us(c_bh_eff_us);
  p.pre_cost = Duration::us(pre_cost_us);
  return p;
}

TraceEvent admission(std::int64_t raise_ns, std::uint32_t source = 0) {
  TraceEvent e;
  e.time_ns = raise_ns;  // close enough for replay; the check reads arg0
  e.point = TracePoint::kInterposeStart;
  e.category = TraceCategory::kInterpose;
  e.source = source;
  e.arg0 = static_cast<std::uint64_t>(raise_ns);
  return e;
}

TraceEvent at(std::int64_t time_ns, TracePoint point,
              TraceCategory category = TraceCategory::kInterpose,
              std::uint32_t source = 0) {
  TraceEvent e;
  e.time_ns = time_ns;
  e.point = point;
  e.category = category;
  e.source = source;
  return e;
}

TEST(InterferenceOracleTest, ExactDminSpacingConformsWithRatioOne) {
  InterferenceOracle oracle({params_us(1000)});
  std::vector<TraceEvent> events;
  for (int i = 0; i < 50; ++i) events.push_back(admission(i * 1000 * kUs));
  const auto report = oracle.verify(events);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.interpositions, 50u);
  EXPECT_EQ(report.windows_checked, 49u);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 1.0);
}

TEST(InterferenceOracleTest, PairOneNsUnderDminViolates) {
  InterferenceOracle oracle({params_us(1000)});
  const auto report = oracle.verify({admission(0), admission(1000 * kUs - 1)});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_FALSE(report.ok());
  const auto& v = report.violations[0];
  EXPECT_EQ(v.admitted, 2u);
  EXPECT_EQ(v.bound, 1u);  // floor(999999/1000000) + 1
  EXPECT_EQ(v.window_start_ns, 0);
  EXPECT_EQ(v.window_end_ns, 1000 * kUs - 1);
}

TEST(InterferenceOracleTest, SparseStreamNeverViolates) {
  InterferenceOracle oracle({params_us(1000)});
  const auto report = oracle.verify(
      {admission(0), admission(1500 * kUs), admission(4000 * kUs),
       admission(5001 * kUs)});
  EXPECT_TRUE(report.ok());
  EXPECT_LE(report.worst_ratio, 1.0);
}

TEST(InterferenceOracleTest, ViolationWindowNeedNotBeAdjacent) {
  // Pairwise gaps of 600us each conform to nothing here: three admissions in
  // 1200us exceed floor(1200/1000)+1 = 2. The violating window spans the
  // first and third admission, not a neighbouring pair.
  InterferenceOracle oracle({params_us(1000)});
  const auto report =
      oracle.verify({admission(0), admission(600 * kUs), admission(1200 * kUs)});
  ASSERT_FALSE(report.violations.empty());
  const auto& v = report.violations.front();
  EXPECT_EQ(v.first_index, 0u);
  EXPECT_EQ(v.last_index, 1u);  // the 600us pair already violates
  EXPECT_EQ(v.admitted, 2u);
  EXPECT_EQ(v.bound, 1u);
}

TEST(InterferenceOracleTest, RecoveredStreamStaysFlagged) {
  // One early violation must not be masked by later conforming behaviour:
  // after the 500us pair, a 1500us gap re-amortizes the count and the rest
  // of the stream runs at exactly d_min without further violations.
  InterferenceOracle oracle({params_us(1000)});
  std::vector<TraceEvent> events{admission(0), admission(500 * kUs)};
  for (int i = 0; i < 20; ++i) events.push_back(admission((2000 + 1000 * i) * kUs));
  const auto report = oracle.verify(events);
  EXPECT_EQ(report.violations.size(), 1u);
  EXPECT_GT(report.worst_ratio, 1.0);
}

TEST(InterferenceOracleTest, SourcesAreTrackedIndependently) {
  InterferenceOracle oracle({params_us(1000), [] {
                               auto p = params_us(1000);
                               p.source = 1;
                               return p;
                             }()});
  // Interleaved: each source individually conforms at exactly d_min.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(admission(i * 1000 * kUs, 0));
    events.push_back(admission(i * 1000 * kUs + 400 * kUs, 1));
  }
  EXPECT_TRUE(oracle.verify(events).ok());
  // ... and a violation on source 1 names source 1.
  events.push_back(admission(9 * 1000 * kUs + 400 * kUs + 1, 1));
  const auto report = oracle.verify(events);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].source, 1u);
}

TEST(InterferenceOracleTest, UnmonitoredSourceIsIgnored) {
  InterferenceOracle oracle({params_us(1000)});
  const auto report =
      oracle.verify({admission(0, 7), admission(10, 7), admission(20, 7)});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.windows_checked, 0u);
}

TEST(InterferenceOracleTest, CleanSpanWithinBudgetPasses) {
  // c_bh_eff 200us, pre_cost 30us: a 170us enter->return span is exactly at
  // the bound.
  InterferenceOracle oracle({params_us(1000)});
  const auto report = oracle.verify(
      {at(0, TracePoint::kInterposeEnter),
       at(170 * kUs, TracePoint::kInterposeReturn)});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.spans_checked, 1u);
  EXPECT_EQ(report.max_interposition_ns, 200 * kUs);
}

TEST(InterferenceOracleTest, OverlongSpanIsACostViolation) {
  InterferenceOracle oracle({params_us(1000)});
  const auto report = oracle.verify(
      {at(0, TracePoint::kInterposeEnter),
       at(170 * kUs + 1, TracePoint::kInterposeReturn)});
  ASSERT_EQ(report.cost_violations.size(), 1u);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_FALSE(report.ok());
}

TEST(InterferenceOracleTest, PreemptedSpanIsExcludedNotFailed) {
  // A TDMA tick (scheduler category) inside the span inflates its wall-clock
  // with work Eq. 14 does not charge to this interposition.
  InterferenceOracle oracle({params_us(1000)});
  const auto report = oracle.verify(
      {at(0, TracePoint::kInterposeEnter),
       at(50 * kUs, TracePoint::kSlotDeferred, TraceCategory::kScheduler),
       at(500 * kUs, TracePoint::kInterposeReturn)});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.spans_checked, 0u);
  EXPECT_EQ(report.preempted_spans, 1u);
}

TEST(InterferenceOracleTest, DeferredExitClosesSpan) {
  InterferenceOracle oracle({params_us(1000)});
  const auto report = oracle.verify(
      {at(0, TracePoint::kInterposeEnter),
       at(100 * kUs, TracePoint::kInterposeExitDeferred)});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.spans_checked, 1u);
  EXPECT_EQ(report.max_interposition_ns, 130 * kUs);
}

TEST(InterferenceOracleTest, UnrelatedEventsDoNotPreemptSpans) {
  InterferenceOracle oracle({params_us(1000)});
  const auto report = oracle.verify(
      {at(0, TracePoint::kInterposeEnter),
       at(10 * kUs, TracePoint::kIrqPush, TraceCategory::kIrq),
       at(100 * kUs, TracePoint::kInterposeReturn)});
  EXPECT_EQ(report.spans_checked, 1u);
  EXPECT_EQ(report.preempted_spans, 0u);
}

}  // namespace
}  // namespace rthv::fault
