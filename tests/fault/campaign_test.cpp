// End-to-end fault-injection campaigns on the monitored paper baseline.
//
// Three guarantees are pinned here:
//  1. Soundness: every committed plan in configs/ runs clean -- the monitor
//     holds all admitted interference within I(dt) = ceil(dt/d_min) * C'_BH
//     no matter how adversarial the injected workload is.
//  2. Falsifiability: a deliberately weakened monitor (test-only hook) makes
//     the oracle fail. An oracle nothing can fail verifies nothing.
//  3. Determinism: a fault sweep merges bit-identically for any --jobs
//     value, and the adversary campaign's full trace matches a committed
//     golden file (tests/fault/golden_adversary_trace.txt; regenerate with
//     RTHV_UPDATE_GOLDEN=1 ./build/tests/test_fault).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/hypervisor_system.hpp"
#include "exp/run_result.hpp"
#include "exp/seed.hpp"
#include "exp/sweep_runner.hpp"
#include "exp/thread_pool.hpp"
#include "fault/fault_engine.hpp"
#include "fault/fault_plan.hpp"
#include "fault/oracle.hpp"
#include "obs/exporters.hpp"
#include "workload/generators.hpp"

namespace rthv::fault {
namespace {

using sim::Duration;
using sim::TimePoint;

core::SystemConfig monitored_baseline() {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = Duration::us(1444);
  return cfg;
}

std::string config_path(const char* plan) {
  return std::string(RTHV_CONFIG_DIR) + "/" + plan;
}

struct CampaignOutput {
  OracleReport report;
  std::uint64_t injected = 0;
  std::string trace_text;
};

/// Runs `plan` against the monitored baseline with a light background
/// workload on the monitored source and replays the trace through the
/// oracle.
CampaignOutput run_campaign(const FaultPlan& plan, std::uint64_t seed,
                            bool with_workload = true, bool weaken = false) {
  core::HypervisorSystem system(monitored_baseline());
  if (weaken) weaken_monitor_for_test(system, 0, 4);
  system.enable_tracing();
  if (with_workload) {
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 2014);
    system.attach_trace(0, gen.generate(64));
  }
  FaultEngine engine(system, plan, seed);
  engine.arm();
  const Duration horizon = plan.horizon.is_positive() ? plan.horizon : Duration::s(1);
  system.run(horizon);

  CampaignOutput out;
  out.injected = engine.total_injected();
  const InterferenceOracle oracle(InterferenceOracle::params_from(system));
  out.report = oracle.verify(system.trace());
  const auto meta = system.trace_meta();
  out.trace_text = obs::render_text(system.trace(), &meta);
  return out;
}

TEST(FaultCampaignTest, CommittedStormPlanRunsClean) {
  const auto plan = load_fault_plan_file(config_path("fault_storm.plan"));
  const auto out = run_campaign(plan, 1);
  EXPECT_EQ(out.injected, 80u);  // 20 bursts x 4 raises
  EXPECT_GT(out.report.interpositions, 0u);
  EXPECT_TRUE(out.report.ok()) << "storm plan must not break the monitor";
  EXPECT_LE(out.report.worst_ratio, 1.0);
}

TEST(FaultCampaignTest, CommittedCampaignPlanRunsClean) {
  const auto plan = load_fault_plan_file(config_path("fault_campaign.plan"));
  const auto out = run_campaign(plan, 1);
  EXPECT_GT(out.injected, 0u);
  EXPECT_TRUE(out.report.ok())
      << "storm + drift + overrun must not break the monitor";
}

TEST(FaultCampaignTest, CommittedAdversaryPlanRunsClean) {
  const auto plan = load_fault_plan_file(config_path("fault_adversary.plan"));
  const auto out = run_campaign(plan, 1, /*with_workload=*/false);
  EXPECT_EQ(out.injected, 200u);
  EXPECT_TRUE(out.report.ok())
      << "the greedy adversary must stay within the bound";
  // The adversary raises at the earliest admissible instant; the oracle's
  // worst window must come out at exactly the bound, never over it.
  EXPECT_DOUBLE_EQ(out.report.worst_ratio, 1.0);
}

/// In-code plan whose raises conform to a weakened monitor but violate the
/// configured d_min: 400us spacing sits between 1444us/4 = 361us and 1444us.
FaultPlan weakening_probe_plan() {
  InjectionSpec spec;
  spec.kind = FaultKind::kFlood;
  spec.source = 0;
  spec.start = TimePoint::at_us(10'000);
  spec.count = 50;
  spec.distance = Duration::us(400);
  FaultPlan plan;
  plan.injections.push_back(spec);
  plan.horizon = Duration::ms(100);
  return plan;
}

TEST(FaultCampaignTest, WeakenedMonitorFailsTheOracle) {
  const auto out = run_campaign(weakening_probe_plan(), 1,
                                /*with_workload=*/false, /*weaken=*/true);
  EXPECT_FALSE(out.report.ok())
      << "a monitor enforcing d_min/4 must produce oracle violations";
  EXPECT_GT(out.report.violations.size(), 0u);
  EXPECT_GT(out.report.worst_ratio, 1.0);
}

TEST(FaultCampaignTest, IntactMonitorDeniesTheSameProbe) {
  // The identical flood against the configured monitor: everything closer
  // than d_min is denied, so the admitted stream stays conforming.
  const auto out = run_campaign(weakening_probe_plan(), 1,
                                /*with_workload=*/false, /*weaken=*/false);
  EXPECT_TRUE(out.report.ok());
  EXPECT_LE(out.report.interpositions, 2u)
      << "constant 400us spacing admits at most the opening activation";
}

TEST(FaultCampaignTest, QueueOverflowUnderFloodIsCountedAndTraced) {
  // Satellite check for hv/irq_queue: a flood past capacity must surface as
  // the irq_queue/dropped metric and kIrqDrop trace events, not silence.
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.irq_queue_capacity = 4;
  core::HypervisorSystem system(cfg);
  system.enable_tracing();

  InjectionSpec spec;
  spec.kind = FaultKind::kFlood;
  spec.source = 0;
  spec.start = TimePoint::at_us(100);  // partition 0's slot: foreign, so all queue
  spec.count = 50;
  spec.distance = Duration::us(10);
  FaultPlan plan;
  plan.injections.push_back(spec);
  plan.horizon = Duration::ms(50);

  FaultEngine engine(system, plan, 1);
  engine.arm();
  system.run(plan.horizon);

  EXPECT_EQ(engine.total_injected(), 50u);
  const auto metrics = system.metrics_snapshot();
  EXPECT_EQ(metrics.counter_value("fault/injected/flood"), 50u);
  const auto dropped = metrics.counter_value("irq_queue/dropped");
  EXPECT_GT(dropped, 0u);

  std::uint64_t drop_events = 0;
  for (const auto& e : system.trace()) {
    if (e.point == obs::TracePoint::kIrqDrop) ++drop_events;
  }
  EXPECT_EQ(drop_events, dropped) << "every counted drop must also be traced";
}

TEST(FaultCampaignTest, CampaignIsAPureFunctionOfSeed) {
  const auto plan = load_fault_plan_file(config_path("fault_campaign.plan"));
  const auto a = run_campaign(plan, 42);
  const auto b = run_campaign(plan, 42);
  const auto c = run_campaign(plan, 43);
  EXPECT_EQ(a.trace_text, b.trace_text);
  EXPECT_EQ(a.injected, b.injected);
  // A different campaign seed moves the randomized injectors (drift jitter),
  // so the trace must differ -- otherwise the seed is not actually wired in.
  EXPECT_NE(a.trace_text, c.trace_text);
}

// A fault sweep merged in run-index order is bit-identical for any job
// count: per-run campaign seeds come from derive_seed, injectors register
// metrics in plan order, and no injector touches shared state.
exp::RunResult run_fault_sweep(std::size_t jobs, const FaultPlan& plan) {
  constexpr std::size_t kRuns = 6;
  exp::SweepRunner runner(jobs);
  auto runs = runner.map(kRuns, [&plan](std::size_t i) {
    core::HypervisorSystem system(monitored_baseline());
    system.enable_tracing();
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 2014 + i);
    system.attach_trace(0, gen.generate(64));
    FaultEngine engine(system, plan, exp::derive_seed(2014, i));
    engine.arm();
    system.run(plan.horizon.is_positive() ? plan.horizon : Duration::s(1));
    return exp::RunResult::capture(system);
  });
  exp::RunResult merged = std::move(runs[0]);
  for (std::size_t i = 1; i < runs.size(); ++i) merged.merge(std::move(runs[i]));
  return merged;
}

TEST(FaultCampaignTest, SweepIsJobCountIndependent) {
  const auto plan = load_fault_plan_file(config_path("fault_storm.plan"));
  const auto sequential = run_fault_sweep(1, plan);
  const auto parallel = run_fault_sweep(exp::ThreadPool::hardware_jobs(), plan);

  std::ostringstream js, jp;
  sequential.metrics.write_json(js);
  parallel.metrics.write_json(jp);
  EXPECT_EQ(js.str(), jp.str()) << "merged fault metrics must be bit-identical";
  EXPECT_EQ(obs::render_text(sequential.trace, &sequential.trace_meta),
            obs::render_text(parallel.trace, &parallel.trace_meta))
      << "merged fault trace stream must be bit-identical";
  EXPECT_GT(sequential.metrics.counter_value("fault/injected/storm"), 0u);
}

std::string golden_path() {
  return std::string(RTHV_FAULT_GOLDEN_DIR) + "/golden_adversary_trace.txt";
}

TEST(FaultCampaignTest, AdversaryTraceMatchesGoldenFile) {
  const auto plan = load_fault_plan_file(config_path("fault_adversary.plan"));
  // No random injectors and no workload: the adversary plan is integer-only,
  // so its trace is exact and platform-independent.
  const auto out = run_campaign(plan, 1, /*with_workload=*/false);
  ASSERT_GT(out.trace_text.size(), 1000u) << "trace suspiciously small";

  if (std::getenv("RTHV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(golden_path());
    ASSERT_TRUE(os) << "cannot write " << golden_path();
    os << out.trace_text;
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream is(golden_path());
  ASSERT_TRUE(is) << "missing golden file " << golden_path()
                  << " -- regenerate with RTHV_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << is.rdbuf();
  EXPECT_EQ(out.trace_text, golden.str())
      << "adversary campaign trace diverged from the committed golden stream";
}

}  // namespace
}  // namespace rthv::fault
