// Ablation sweeps over the design parameters DESIGN.md calls out:
//
//  1. TDMA cycle length: the paper's motivation -- shrinking the cycle
//     reduces delayed latency but multiplies context-switch overhead;
//     interposing decouples latency from the cycle length.
//  2. d_min (the monitoring condition): tighter admission (larger d_min)
//     trades average latency for a smaller interference bound (Eq. 14).
//  3. Context-switch cost: interposing pays 2 * C_ctx per IRQ (Eq. 13), so
//     its benefit shrinks on platforms with expensive switches.
//
// Every row of every table is an independent simulation; with `--jobs N`
// the rows are sharded over N worker threads. Row seeds are fixed per row,
// results are collected in row order, so the printed tables are
// bit-identical for any job count.
//
// With `--fault-plan PATH` an extra sweep replays the fault-injection plan
// at several campaign seeds and checks every run with the interference
// oracle (non-zero exit on any violation).
//
// With `--batch` an extra seed-robustness sweep replicates the monitored
// baseline across 64 independent seeds on the batched campaign engine
// (SystemPool + BatchRunner): every row above reports one seed; this sweep
// shows how stable those numbers are across seeds, at a per-run cost the
// classic construct-per-run path would not amortize.
//
// usage: ablation_sweeps [--jobs N] [--fault-plan PATH] [--batch]
//        [--no-warm-start] [--chunk N]
#include <iostream>
#include <vector>

#include "analysis/irq_latency.hpp"
#include "analysis/slot_table.hpp"
#include "core/analysis_facade.hpp"
#include "core/hypervisor_system.hpp"
#include "exp/batch_runner.hpp"
#include "exp/cli.hpp"
#include "exp/seed.hpp"
#include "exp/sweep_runner.hpp"
#include "exp/system_pool.hpp"
#include "fault/fault_engine.hpp"
#include "fault/oracle.hpp"
#include "mon/token_bucket_monitor.hpp"
#include "mon/window_count_monitor.hpp"
#include "hv/overhead_model.hpp"
#include "stats/table.hpp"
#include "workload/generators.hpp"

using namespace rthv;
using sim::Duration;

namespace {

struct RunOut {
  Duration avg;
  Duration max;
  std::uint64_t ctx_switches;
  double interposed_frac;
};

RunOut run(const core::SystemConfig& cfg, Duration lambda, Duration floor,
           std::size_t irqs, std::uint64_t seed) {
  core::HypervisorSystem system(cfg);
  workload::ExponentialTraceGenerator gen(lambda, seed, floor);
  system.attach_trace(0, gen.generate(irqs));
  system.run(Duration::s(600));
  return RunOut{system.recorder().all().mean(), system.recorder().all().max(),
                system.hypervisor().context_switches().total(),
                system.recorder().fraction(stats::HandlingClass::kInterposed)};
}

Duration c_bh_eff_of(const core::SystemConfig& cfg) {
  const hw::CpuModel cpu(cfg.platform.cpu_freq_hz, cfg.platform.cpi_milli);
  const hw::MemorySystem mem(cfg.platform.ctx_invalidate_instructions,
                             cfg.platform.ctx_writeback_cycles);
  const hv::OverheadModel oh(cpu, mem, cfg.overheads);
  return oh.effective_bottom_cost(cfg.sources[0].c_bottom);
}

using Row = std::vector<std::string>;

}  // namespace

int main(int argc, char** argv) {
  const auto cli = exp::parse_cli(argc, argv);
  exp::SweepRunner runner(cli.jobs);

  constexpr std::size_t kIrqs = 2000;
  auto base = core::SystemConfig::paper_baseline();
  // Single-core ablations: all partitions and sources stay on core 0 (the
  // spec default), stated explicitly now that configs carry core assignments.
  base.interconnect.num_cores = 1;
  for (auto& p : base.partitions) p.core = 0;
  for (auto& s : base.sources) s.core = 0;
  // Every sweep below runs a 600 s horizon with a small steady-state pending
  // set; the hints let the event core pre-size its slot arena and far heap
  // so no run grows tables mid-measurement.
  base.sim_horizon_hint = Duration::s(600);
  base.expected_pending_events = 128;
  const Duration c_bh_eff = c_bh_eff_of(base);
  const auto lambda = Duration::ns(c_bh_eff.count_ns() * 10);  // 10% load

  // --- 1. TDMA cycle length sweep -----------------------------------------
  std::cout << "=== Ablation 1: TDMA cycle length (10% load, conforming arrivals) ===\n";
  stats::Table t1({"cycle [us]", "unmon avg [us]", "unmon max [us]", "unmon ctx/s",
                   "interposed avg [us]", "interposed max [us]"});
  {
    const std::vector<int> scales = {1, 2, 4};
    const auto rows = runner.map(scales.size(), [&](std::size_t i) -> Row {
      auto cfg = base;
      for (auto& p : cfg.partitions) p.slot_length = p.slot_length * scales[i];
      const auto unmon = run(cfg, lambda, lambda, kIrqs, 100);
      auto mon_cfg = cfg;
      mon_cfg.mode = hv::TopHandlerMode::kInterposing;
      mon_cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
      mon_cfg.sources[0].d_min = lambda;
      const auto mon = run(mon_cfg, lambda, lambda, kIrqs, 100);
      const double span_s = static_cast<double>(kIrqs) * lambda.as_s();
      return {stats::Table::num(cfg.tdma_cycle().as_us(), 0),
              stats::Table::num(unmon.avg.as_us()), stats::Table::num(unmon.max.as_us()),
              stats::Table::num(static_cast<double>(unmon.ctx_switches) / span_s, 0),
              stats::Table::num(mon.avg.as_us()), stats::Table::num(mon.max.as_us())};
    });
    for (const auto& row : rows) t1.add_row(row);
  }
  t1.write(std::cout);
  std::cout << "expectation: unmonitored latency scales with the cycle; interposed "
               "latency does not\n\n";

  // --- 2. d_min sweep -------------------------------------------------------
  std::cout << "=== Ablation 2: monitoring distance d_min (10% load, exponential) ===\n";
  stats::Table t2({"d_min / lambda", "avg [us]", "max [us]", "interposed",
                   "interference bound / cycle [us]"});
  {
    const std::vector<double> ratios = {0.25, 0.5, 1.0, 2.0, 4.0};
    const auto rows = runner.map(ratios.size(), [&](std::size_t i) -> Row {
      const double ratio = ratios[i];
      auto cfg = base;
      cfg.mode = hv::TopHandlerMode::kInterposing;
      cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
      const auto d_min =
          Duration::ns(static_cast<std::int64_t>(static_cast<double>(lambda.count_ns()) * ratio));
      cfg.sources[0].d_min = d_min;
      const auto out = run(cfg, lambda, Duration::zero(), kIrqs, 200);
      const auto bound = analysis::interposed_interference(cfg.tdma_cycle(), d_min, c_bh_eff);
      return {stats::Table::num(ratio, 2), stats::Table::num(out.avg.as_us()),
              stats::Table::num(out.max.as_us()),
              stats::Table::num(out.interposed_frac * 100) + "%",
              stats::Table::num(bound.as_us())};
    });
    for (const auto& row : rows) t2.add_row(row);
  }
  t2.write(std::cout);
  std::cout << "expectation: smaller d_min admits more interposing (lower average) at "
               "the price of a larger Eq. 14 interference bound\n\n";

  // --- 3. context-switch cost sweep -----------------------------------------
  std::cout << "=== Ablation 3: context-switch cost (conforming, d_min = lambda) ===\n";
  stats::Table t3({"C_ctx [us]", "C'_BH [us]", "interposed avg [us]", "unmon avg [us]",
                   "speedup"});
  {
    const std::vector<std::uint64_t> instrs = {1000, 5000, 20000, 50000};
    const auto rows = runner.map(instrs.size(), [&](std::size_t i) -> Row {
      const std::uint64_t instr = instrs[i];
      auto cfg = base;
      cfg.platform.ctx_invalidate_instructions = instr;
      cfg.platform.ctx_writeback_cycles = instr;
      const Duration eff = c_bh_eff_of(cfg);
      // Keep the load definition consistent with the platform's C'_BH.
      const auto lam = Duration::ns(eff.count_ns() * 10);
      auto mon_cfg = cfg;
      mon_cfg.mode = hv::TopHandlerMode::kInterposing;
      mon_cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
      mon_cfg.sources[0].d_min = lam;
      const auto mon = run(mon_cfg, lam, lam, kIrqs, 300);
      const auto unmon = run(cfg, lam, lam, kIrqs, 300);
      const double speedup = static_cast<double>(unmon.avg.count_ns()) /
                             static_cast<double>(mon.avg.count_ns());
      const hw::CpuModel cpu(cfg.platform.cpu_freq_hz, cfg.platform.cpi_milli);
      return {stats::Table::num(
                  (cpu.instructions_to_duration(instr) + cpu.cycles_to_duration(instr))
                      .as_us()),
              stats::Table::num(eff.as_us()), stats::Table::num(mon.avg.as_us()),
              stats::Table::num(unmon.avg.as_us()), stats::Table::num(speedup, 2) + "x"};
    });
    for (const auto& row : rows) t3.add_row(row);
  }
  t3.write(std::cout);
  std::cout << "expectation: the interposing benefit shrinks as context switches get "
               "more expensive (2 x C_ctx per interposed IRQ, Eq. 13)\n\n";

  // --- 4. shaper comparison: delta^- monitor vs token bucket ----------------
  std::cout << "=== Ablation 4: admission shaper (bursty arrivals, equal long-term "
               "rate) ===\n";
  stats::Table t4({"shaper", "avg [us]", "max [us]", "interposed",
                   "interference bound / cycle [us]"});
  {
    // Bursty workload: pairs of IRQs ~200us apart, bursts every ~3ms.
    workload::BurstTraceGenerator bursty(Duration::ms(3), 2, Duration::us(200), 400);
    const auto events = bursty.generate_until(Duration::s(6));
    const workload::Trace trace = workload::Trace::from_activations(events);
    const Duration interval = lambda;  // same long-term admitted rate for both

    const auto rows = runner.map(3, [&](std::size_t shaper) -> Row {
      auto cfg = base;
      cfg.mode = hv::TopHandlerMode::kInterposing;
      cfg.sources[0].d_min = interval;
      Duration bound;
      const char* label = "";
      switch (shaper) {
        case 0:
          cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
          bound = analysis::interposed_interference(cfg.tdma_cycle(), interval, c_bh_eff);
          label = "delta^- (d_min)";
          break;
        case 1:
          cfg.sources[0].monitor = core::MonitorKind::kTokenBucket;
          cfg.sources[0].bucket_depth = 2;  // admits a whole burst back-to-back
          bound = mon::token_bucket_interference(cfg.tdma_cycle(), interval, 2, c_bh_eff);
          label = "token bucket (depth 2)";
          break;
        case 2:
          // Window counter at the same long-term rate: 2 events per 2*d_min.
          cfg.sources[0].monitor = core::MonitorKind::kWindowCount;
          cfg.sources[0].d_min = interval * 2;
          cfg.sources[0].window_events = 2;
          bound = mon::window_count_interference(cfg.tdma_cycle(), interval * 2, 2,
                                                 c_bh_eff);
          label = "window counter (2 per 2*d_min)";
          break;
        default:
          break;
      }
      core::HypervisorSystem system(cfg);
      system.attach_trace(0, trace);
      system.run(Duration::s(600));
      return {label,
              stats::Table::num(system.recorder().all().mean().as_us()),
              stats::Table::num(system.recorder().all().max().as_us()),
              stats::Table::num(
                  system.recorder().fraction(stats::HandlingClass::kInterposed) *
                  100) + "%",
              stats::Table::num(bound.as_us())};
    });
    for (const auto& row : rows) t4.add_row(row);
  }
  t4.write(std::cout);
  std::cout << "expectation: the token bucket admits whole bursts (lower average on "
               "bursty traffic) but its short-window interference bound is weaker "
               "than Eq. 14 -- the paper's delta^- choice trades average latency "
               "for the tighter isolation guarantee\n\n";

  // --- 5. interfering top handlers (Eq. 9) -----------------------------------
  std::cout << "=== Ablation 5: interference from other IRQ sources' top handlers ===\n";
  stats::Table t5({"interferer rate [1/s]", "analytic interposed WCRT [us]",
                   "simulated interposed max [us]"});
  {
    const std::vector<std::int64_t> interferer_d_us_list = {0, 2000, 500, 200};
    const auto rows = runner.map(interferer_d_us_list.size(), [&](std::size_t i) -> Row {
      const std::int64_t interferer_d_us = interferer_d_us_list[i];
      auto cfg = base;
      cfg.mode = hv::TopHandlerMode::kInterposing;
      cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
      cfg.sources[0].d_min = lambda;
      std::vector<analysis::IrqSourceModel> others;
      if (interferer_d_us > 0) {
        core::IrqSourceSpec noise;
        noise.name = "noise";
        noise.subscriber = 0;  // partition 1: never the analyzed subscriber
        noise.core = 0;  // single-core sweep: device wired to the only core
        noise.c_top = Duration::us(5);
        noise.c_bottom = Duration::us(10);
        cfg.sources.push_back(noise);
        others.push_back(analysis::IrqSourceModel{
            analysis::make_sporadic(Duration::us(interferer_d_us)), noise.c_top,
            noise.c_bottom});
      }
      const core::AnalysisFacade facade(cfg);
      const auto bound = analysis::interposed_latency(
          facade.source_model(0, analysis::make_sporadic(lambda)), others,
          facade.overhead_times());

      core::HypervisorSystem system(cfg);
      system.keep_completions(true);
      workload::ExponentialTraceGenerator gen(lambda, 500, lambda);
      system.attach_trace(0, gen.generate(1000));
      if (interferer_d_us > 0) {
        workload::ExponentialTraceGenerator noise_gen(
            Duration::us(interferer_d_us), 501, Duration::us(interferer_d_us));
        system.attach_trace(1, noise_gen.generate(
            static_cast<std::size_t>(1000 * lambda.count_ns() / (interferer_d_us * 1000))));
      }
      system.run(Duration::s(600));
      Duration max_interposed = Duration::zero();
      for (const auto& rec : system.completions()) {
        if (rec.source == 0 && rec.handling == stats::HandlingClass::kInterposed) {
          max_interposed = std::max(max_interposed, rec.latency());
        }
      }
      const std::string rate_cell =
          interferer_d_us == 0
              ? std::string("none")
              : stats::Table::num(1e6 / static_cast<double>(interferer_d_us), 0);
      const std::string bound_cell =
          bound ? stats::Table::num(bound->worst_case.as_us()) : std::string("diverges");
      return {rate_cell, bound_cell, stats::Table::num(max_interposed.as_us())};
    });
    for (const auto& row : rows) t5.add_row(row);
  }
  t5.write(std::cout);
  std::cout << "expectation: other sources' top handlers add eta_j(W) * C_THj to the "
               "interposed busy window (Eq. 9/16); the analytic bound grows with the "
               "interferer rate and stays above the simulated maximum\n\n";

  // --- 6. slot splitting vs interposing --------------------------------------
  // The paper's introduction: shrinking TDMA granularity reduces latency but
  // "may significantly increase overhead". Splitting the subscriber's slot
  // into k parts is the strict-isolation alternative to interposing.
  std::cout << "=== Ablation 6: slot splitting vs interposing (strict isolation "
               "alternative) ===\n";
  stats::Table t6({"subscriber slots", "analytic delayed WCRT [us]", "sim avg [us]",
                   "sim max [us]", "ctx switches/s"});
  {
    const hw::CpuModel cpu(base.platform.cpu_freq_hz, base.platform.cpi_milli);
    const hw::MemorySystem mem(base.platform.ctx_invalidate_instructions,
                               base.platform.ctx_writeback_cycles);
    const hv::OverheadModel oh_model(cpu, mem, base.overheads);
    const Duration entry_oh = oh_model.tdma_tick_cost() + oh_model.context_switch_cost();

    // Jobs 0..2: split schedules; job 3: the interposing reference row.
    const std::vector<std::uint32_t> parts_list = {1, 2, 4};
    const auto rows = runner.map(parts_list.size() + 1, [&](std::size_t i) -> Row {
      if (i == parts_list.size()) {
        // Interposing reference row (single-slot schedule, monitored).
        auto mon_cfg = base;
        mon_cfg.mode = hv::TopHandlerMode::kInterposing;
        mon_cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
        mon_cfg.sources[0].d_min = lambda;
        const auto mon = run(mon_cfg, lambda, lambda, kIrqs, 600);
        const double span_s = static_cast<double>(kIrqs) * lambda.as_s();
        return {"1 + interposing", "150.0 (Eq. 16)", stats::Table::num(mon.avg.as_us()),
                stats::Table::num(mon.max.as_us()),
                stats::Table::num(static_cast<double>(mon.ctx_switches) / span_s, 0)};
      }
      const std::uint32_t parts = parts_list[i];
      auto cfg = base;
      // Split every partition's slot into `parts` interleaved pieces,
      // preserving the 14000us cycle and each partition's 6000/6000/2000us
      // share.
      cfg.schedule.clear();
      for (std::uint32_t k = 0; k < parts; ++k) {
        for (std::uint32_t p = 0; p < cfg.partitions.size(); ++p) {
          cfg.schedule.push_back(core::ScheduleSlot{
              p, Duration::ns(cfg.partitions[p].slot_length.count_ns() / parts)});
        }
      }

      // Exact multi-slot analysis: subscriber is partition 1.
      std::vector<analysis::SlotTableModel::Slot> table_slots;
      for (const auto& s : cfg.schedule) {
        table_slots.push_back({s.partition == 1, s.length});
      }
      const analysis::SlotTableModel table(table_slots, entry_oh);
      analysis::BusyWindowProblem problem;
      problem.per_event_cost = cfg.sources[0].c_bottom;
      problem.interference.push_back(analysis::load_interference(
          analysis::ArrivalCurve(analysis::make_sporadic(lambda)),
          cfg.sources[0].c_top));
      problem.interference.push_back(
          [&table](Duration w) { return table.interference(w); });
      const auto bound = analysis::response_time(problem, *analysis::make_sporadic(lambda));

      const auto out = run(cfg, lambda, lambda, kIrqs, 600);
      const double span_s = static_cast<double>(kIrqs) * lambda.as_s();
      return {std::to_string(parts),
              bound ? stats::Table::num(bound->worst_case.as_us()) : "diverges",
              stats::Table::num(out.avg.as_us()), stats::Table::num(out.max.as_us()),
              stats::Table::num(static_cast<double>(out.ctx_switches) / span_s, 0)};
    });
    for (const auto& row : rows) t6.add_row(row);
  }
  t6.write(std::cout);
  std::cout << "expectation: splitting shrinks the delayed worst case roughly by the "
               "split factor but multiplies context switches; interposing reaches a "
               "far lower latency at a lower switch rate\n";

  // --- 7. seed robustness (with --batch) --------------------------------------
  // Every table above quotes a single seed per row. This sweep replicates the
  // monitored baseline over 64 independent seeds on the batched campaign
  // engine -- pooled systems recycled by snapshot warm-start, chunks executed
  // by the work-stealing BatchRunner -- and reports how tight the spread is.
  if (cli.batch) {
    std::cout << "=== Ablation 7: seed robustness of the monitored baseline "
                 "(batched engine) ===\n";
    auto cfg = base;
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    cfg.sources[0].d_min = lambda;

    exp::SystemPool::Options pool_options;
    pool_options.warm_start = cli.warm_start;
    exp::SystemPool pool(cfg, pool_options);
    exp::BatchRunner batch(exp::BatchOptions{.jobs = cli.jobs, .chunk = cli.chunk});
    constexpr std::size_t kReps = 64;
    const auto reps =
        batch.map(pool, kReps, [&](std::size_t i, core::HypervisorSystem& system) {
          workload::ExponentialTraceGenerator gen(lambda, 900 + i, lambda);
          system.attach_trace(0, gen.generate(kIrqs));
          system.run(Duration::s(600));
          return RunOut{system.recorder().all().mean(),
                        system.recorder().all().max(),
                        system.hypervisor().context_switches().total(),
                        system.recorder().fraction(stats::HandlingClass::kInterposed)};
        });

    auto lo = reps[0];
    auto hi = reps[0];
    double avg_sum = 0.0;
    double frac_sum = 0.0;
    for (const auto& r : reps) {
      lo.avg = std::min(lo.avg, r.avg);
      hi.avg = std::max(hi.avg, r.avg);
      lo.max = std::min(lo.max, r.max);
      hi.max = std::max(hi.max, r.max);
      avg_sum += r.avg.as_us();
      frac_sum += r.interposed_frac;
    }
    stats::Table t7b({"metric", "min", "mean over seeds", "max"});
    t7b.add_row({"avg latency [us]", stats::Table::num(lo.avg.as_us()),
                 stats::Table::num(avg_sum / static_cast<double>(kReps)),
                 stats::Table::num(hi.avg.as_us())});
    t7b.add_row({"max latency [us]", stats::Table::num(lo.max.as_us()), "-",
                 stats::Table::num(hi.max.as_us())});
    t7b.write(std::cout);
    const auto& bs = batch.stats();
    std::cout << "interposed fraction, mean over seeds: "
              << stats::Table::num(frac_sum * 100 / static_cast<double>(kReps))
              << "%\n";
    // Engine diagnostics go to stderr: chunk/steal counts depend on --jobs,
    // and stdout must stay bit-identical for any job count.
    std::cerr << "batch engine: " << bs.runs << " runs in " << bs.chunks
              << " chunks on " << bs.pool.constructed << " pooled systems ("
              << bs.pool.warm_recycles << " warm recycles, " << bs.pool.cold_rebuilds
              << " cold rebuilds, steal ratio "
              << stats::Table::num(bs.steal_ratio() * 100) << "%)\n";
    std::cout << "expectation: the per-row numbers above are representative -- the "
                 "seed-to-seed spread of the average stays within a few percent\n\n";
  }

  // --- 8. fault campaign (with --fault-plan) ---------------------------------
  // Replays the plan against the monitored baseline at several campaign
  // seeds; every run is checked by the interference oracle. Row seeds are
  // derived per row, so the table is bit-identical for any --jobs value.
  if (!cli.fault_plan.empty()) {
    std::cout << "\n=== Ablation 8: fault campaign (" << cli.fault_plan << ") ===\n";
    const auto plan = fault::load_fault_plan_file(cli.fault_plan);
    const Duration horizon =
        plan.horizon.is_positive() ? plan.horizon : Duration::s(60);
    stats::Table t7({"campaign seed", "injected", "interpositions", "windows",
                     "worst admitted/bound", "violations"});
    const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
    std::vector<std::uint64_t> row_violations(seeds.size(), 0);  // one slot per row
    const auto rows = runner.map(seeds.size(), [&](std::size_t i) -> Row {
      auto cfg = base;
      cfg.mode = hv::TopHandlerMode::kInterposing;
      cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
      cfg.sources[0].d_min = lambda;
      cfg.sim_horizon_hint = horizon;  // campaign horizon from the fault plan
      core::HypervisorSystem system(cfg);
      system.enable_tracing();
      workload::ExponentialTraceGenerator gen(lambda, 700 + i, lambda);
      system.attach_trace(0, gen.generate(kIrqs));
      fault::FaultEngine engine(system, plan, exp::derive_seed(seeds[i], 0));
      engine.arm();
      system.run(horizon);
      const fault::InterferenceOracle oracle(
          fault::InterferenceOracle::params_from(system));
      const auto report = oracle.verify(system.trace());
      const auto violations =
          report.violations.size() + report.cost_violations.size();
      row_violations[i] = violations;
      return {std::to_string(seeds[i]), std::to_string(engine.total_injected()),
              std::to_string(report.interpositions),
              std::to_string(report.windows_checked),
              stats::Table::num(report.worst_ratio, 2),
              std::to_string(violations)};
    });
    for (const auto& row : rows) t7.add_row(row);
    t7.write(std::cout);
    std::cout << "expectation: the monitor holds every admitted window within "
                 "I(dt) = ceil(dt/d_min) * C'_BH -- zero violations\n";
    for (const auto v : row_violations) {
      if (v > 0) return 1;
    }
  }
  return 0;
}
