// Analysis-vs-simulation validation of the worst-case latency bounds
// (Sections 4 and 5.1).
//
// For a sweep of sporadic activation models (d_min), computes
//  * the TDMA-delayed worst case (Eqs. 6-12, with and without C_Mon), and
//  * the interposed worst case (Eqs. 13-16),
// then measures the observed maxima on conforming simulated runs. The
// simulated maximum must never exceed the analytic bound, and the
// interposed bound must be independent of the TDMA cycle length.
#include <iostream>

#include "core/analysis_facade.hpp"
#include "core/hypervisor_system.hpp"
#include "stats/table.hpp"
#include "workload/generators.hpp"

using namespace rthv;
using sim::Duration;

namespace {

struct Row {
  Duration d_min;
  Duration delayed_bound;
  Duration delayed_sim_max;
  Duration interposed_bound;
  Duration interposed_sim_max;
};

struct SimMax {
  Duration overall;     // max over every completion
  Duration interposed;  // max over the interposed-handled class only
};

SimMax simulate_max(const core::SystemConfig& cfg, Duration d_min, std::uint64_t seed,
                    std::size_t irqs) {
  core::HypervisorSystem system(cfg);
  system.keep_completions(true);
  workload::ExponentialTraceGenerator gen(d_min, seed, /*floor=*/d_min);
  system.attach_trace(0, gen.generate(irqs));
  system.run(Duration::s(600));
  SimMax out{Duration::zero(), Duration::zero()};
  for (const auto& rec : system.completions()) {
    out.overall = std::max(out.overall, rec.latency());
    if (rec.handling == stats::HandlingClass::kInterposed) {
      out.interposed = std::max(out.interposed, rec.latency());
    }
  }
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kIrqs = 1200;
  const auto base = core::SystemConfig::paper_baseline();
  const core::AnalysisFacade facade(base);

  std::cout << "=== Worst-case latency: analysis (Eqs. 11/12 vs 16) vs simulation ===\n\n";
  stats::Table table({"d_min [us]", "delayed bound [us]", "delayed sim max [us]",
                      "interposed bound [us]", "interposed sim max [us]", "bound holds"});

  for (const std::int64_t d_us : {1444, 2000, 4000, 8000, 16000}) {
    Row row;
    row.d_min = Duration::us(d_us);
    const auto activation = analysis::make_sporadic(row.d_min);

    const auto delayed =
        analysis::tdma_latency(facade.source_model(0, activation), {},
                               facade.tdma_model(0), facade.overhead_times(), false);
    // Bound for non-interposed events of the *monitored* run: violating or
    // engine-denied events still pay C_Mon in the top handler (Eq. 15).
    const auto delayed_mon =
        analysis::tdma_latency(facade.source_model(0, activation), {},
                               facade.tdma_model(0), facade.overhead_times(), true);
    const auto interposed = analysis::interposed_latency(
        facade.source_model(0, activation), {}, facade.overhead_times());
    row.delayed_bound = delayed ? delayed->worst_case : Duration::zero();
    row.interposed_bound = interposed ? interposed->worst_case : Duration::zero();

    row.delayed_sim_max =
        simulate_max(base, row.d_min, 81u + static_cast<std::uint64_t>(d_us), kIrqs)
            .overall;

    auto mon_cfg = base;
    mon_cfg.mode = hv::TopHandlerMode::kInterposing;
    mon_cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    mon_cfg.sources[0].d_min = row.d_min;
    const auto mon_max =
        simulate_max(mon_cfg, row.d_min, 82u + static_cast<std::uint64_t>(d_us), kIrqs);
    row.interposed_sim_max = mon_max.interposed;

    // Eq. 16 bounds the interposed-handled class; everything else (e.g. an
    // event whose top handler straddles its own slot's end) stays within
    // the monitored delayed bound.
    const sim::Duration delayed_mon_bound =
        delayed_mon ? delayed_mon->worst_case : Duration::zero();
    const bool holds = row.delayed_sim_max <= row.delayed_bound &&
                       row.interposed_sim_max <= row.interposed_bound &&
                       mon_max.overall <= std::max(delayed_mon_bound,
                                                   row.interposed_bound);
    table.add_row({stats::Table::num(row.d_min.as_us(), 0),
                   stats::Table::num(row.delayed_bound.as_us()),
                   stats::Table::num(row.delayed_sim_max.as_us()),
                   stats::Table::num(row.interposed_bound.as_us()),
                   stats::Table::num(row.interposed_sim_max.as_us()),
                   holds ? "yes" : "NO"});
  }
  table.write(std::cout);

  // TDMA-cycle independence of the interposed bound (Section 5.1, obs. 2).
  std::cout << "\ninterposed bound vs TDMA cycle length (d_min = 1444us):\n";
  stats::Table indep({"TDMA cycle [us]", "delayed bound [us]", "interposed bound [us]"});
  for (const int scale : {1, 2, 4}) {
    auto cfg = base;
    for (auto& p : cfg.partitions) p.slot_length = p.slot_length * scale;
    const core::AnalysisFacade f(cfg);
    const auto act = analysis::make_sporadic(Duration::us(1444));
    const auto delayed = analysis::tdma_latency(f.source_model(0, act), {},
                                                f.tdma_model(0), f.overhead_times(), true);
    const auto interposed =
        analysis::interposed_latency(f.source_model(0, act), {}, f.overhead_times());
    indep.add_row({stats::Table::num(cfg.tdma_cycle().as_us(), 0),
                   stats::Table::num(delayed ? delayed->worst_case.as_us() : 0.0),
                   stats::Table::num(interposed ? interposed->worst_case.as_us() : 0.0)});
  }
  indep.write(std::cout);
  std::cout << "\npaper reference: interposed worst case is independent of the TDMA "
               "cycle; delayed worst case grows with it\n";
  return 0;
}
