// Reproduces Fig. 6b: IRQ latency histogram with monitoring enabled;
// arrivals are exponential and may violate d_min.
//
// Paper result (shape): direct ~40 %, interposed ~40 %, delayed ~20 %;
// average ~1200 us; the worst case is still defined by the TDMA cycle
// (identical to the unmonitored case) because violating IRQs are delayed.
//
// usage: fig6b_monitored [--jobs N] [--trace-out f.json] [--metrics-out f.json]
//        [--batch] [--no-warm-start] [--chunk N] [export-dir]
#include <iostream>

#include "exp/cli.hpp"
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  const auto cli = rthv::exp::parse_cli(argc, argv);
  rthv::bench::Fig6Config config;
  config.monitored = true;
  config.enforce_floor = false;
  config.jobs = cli.jobs;
  config.trace = !cli.trace_out.empty();
  config.fault_plan = cli.fault_plan;
  config.batch = cli.batch;
  config.warm_start = cli.warm_start;
  config.chunk = cli.chunk;
  const auto result = rthv::bench::run_fig6(config);
  rthv::bench::print_fig6_report(std::cout, "Fig. 6b -- monitoring enabled", config,
                                 result);
  if (!cli.positional.empty()) {
    rthv::bench::export_fig6(cli.positional[0], "fig6b", "Fig. 6b -- monitoring enabled",
                             result);
  }
  rthv::bench::export_fig6_observability(result, cli.trace_out, cli.metrics_out);
  std::cout << "paper reference: direct ~40%, interposed ~40%, delayed ~20%, average "
               "~1200us, worst case still TDMA-bound\n";
  return 0;
}
