// Reproduces Fig. 6b: IRQ latency histogram with monitoring enabled;
// arrivals are exponential and may violate d_min.
//
// Paper result (shape): direct ~40 %, interposed ~40 %, delayed ~20 %;
// average ~1200 us; the worst case is still defined by the TDMA cycle
// (identical to the unmonitored case) because violating IRQs are delayed.
#include <iostream>

#include "fig6_common.hpp"

int main(int argc, char** argv) {
  rthv::bench::Fig6Config config;
  config.monitored = true;
  config.enforce_floor = false;
  const auto result = rthv::bench::run_fig6(config);
  rthv::bench::print_fig6_report(std::cout, "Fig. 6b -- monitoring enabled", config,
                                 result);
  if (argc > 1) rthv::bench::export_fig6(argv[1], "fig6b", "Fig. 6b -- monitoring enabled", result);
  std::cout << "paper reference: direct ~40%, interposed ~40%, delayed ~20%, average "
               "~1200us, worst case still TDMA-bound\n";
  return 0;
}
