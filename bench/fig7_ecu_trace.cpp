// Reproduces Fig. 7 (Appendix A): average interrupt latency over IRQ events
// for a real-life (here: synthesized, see DESIGN.md) automotive-ECU
// activation trace with a self-learning delta^-[l] monitor, l = 5.
//
// The first 10 % of the trace is the learning phase (delayed/direct
// handling only, Algorithm 1 records minimum distances); afterwards the
// learned vector is adjusted to a predefined bound (Algorithm 2) and the
// system enters monitored run mode. Four bounds are evaluated:
//   a) non-binding (the learned pattern passes unchanged),
//   b) 25 %, c) 12.5 %, d) 6.25 % of the recorded load.
//
// Paper result (shape): learning-phase average ~2200 us (like the
// unmonitored case); run-phase averages ~120 / ~300 / ~900 / ~1600 us for
// a) .. d) -- average latency rises monotonically as the admitted load
// shrinks.
#include <iostream>
#include <optional>

#include "core/hypervisor_system.hpp"
#include "stats/export.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "workload/ecu_trace.hpp"

using namespace rthv;
using sim::Duration;

namespace {

struct Fig7Run {
  std::string label;
  std::optional<double> load_fraction;  // nullopt = non-binding bound
  Duration learn_avg;
  Duration run_avg;
  std::vector<std::pair<std::size_t, double>> series;  // (event idx, avg us)
};

Fig7Run run_bound(const workload::Trace& trace, std::size_t learn_events,
                  const std::string& label, std::optional<double> load_fraction) {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kLearning;
  cfg.sources[0].learning_depth = 5;
  cfg.sources[0].learning_events = learn_events;
  if (load_fraction) {
    // The predefined bound delta^-_bIp[l]: the trace's own minimum-distance
    // vector scaled to admit only the given fraction of the recorded load.
    const auto recorded = trace.prefix(learn_events).delta_vector(5);
    cfg.sources[0].delta_vector = mon::scale_for_load_fraction(recorded, *load_fraction);
  }

  core::HypervisorSystem system(cfg);
  system.keep_completions(true);
  system.attach_trace(0, trace);
  system.run(Duration::s(300));

  Fig7Run out;
  out.label = label;
  out.load_fraction = load_fraction;
  stats::Summary learn_phase;
  stats::Summary run_phase;
  stats::SlidingAverage sliding(500);
  std::size_t idx = 0;
  for (const auto& rec : system.completions()) {
    const auto avg = sliding.add(rec.latency());
    if (idx % 250 == 0) out.series.emplace_back(idx, avg.as_us());
    (rec.seq < learn_events ? learn_phase : run_phase).add(rec.latency());
    ++idx;
  }
  out.learn_avg = learn_phase.empty() ? Duration::zero() : learn_phase.mean();
  out.run_avg = run_phase.empty() ? Duration::zero() : run_phase.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  workload::EcuTraceConfig trace_cfg;
  trace_cfg.target_activations = 11000;
  const auto trace = workload::EcuTraceSynthesizer(trace_cfg).synthesize();
  const std::size_t learn_events = trace.size() / 10;

  std::cout << "=== Fig. 7 -- automotive ECU activation trace (synthesized) ===\n";
  std::cout << "trace: " << trace.size() << " activations, span "
            << stats::Table::num(trace.span().as_s(), 2) << "s, mean distance "
            << trace.mean_distance() << ", min distance " << trace.min_distance()
            << "\nlearning phase: first " << learn_events
            << " activations (10%), delta^- depth l = 5\n\n";

  const std::vector<std::pair<std::string, std::optional<double>>> bounds = {
      {"a) unbounded", std::nullopt},
      {"b) 25% load", 0.25},
      {"c) 12.5% load", 0.125},
      {"d) 6.25% load", 0.0625},
  };

  std::vector<Fig7Run> runs;
  for (const auto& [label, fraction] : bounds) {
    runs.push_back(run_bound(trace, learn_events, label, fraction));
  }

  stats::Table table({"bound", "learn avg [us]", "run avg [us]", "paper run avg"});
  const char* paper_ref[] = {"~120us", "~300us", "~900us", "~1600us"};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    table.add_row({runs[i].label, stats::Table::num(runs[i].learn_avg.as_us()),
                   stats::Table::num(runs[i].run_avg.as_us()), paper_ref[i]});
  }
  table.write(std::cout);
  std::cout << "\npaper reference: learning-phase average ~2200us; run-phase average "
               "rises monotonically as the admitted load shrinks\n";

  std::cout << "\nsliding-average series (window 500, sampled every 250 events):\n";
  std::cout << "event";
  for (const auto& r : runs) std::cout << "," << r.label;
  std::cout << "\n";
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t row = 0; row < runs[0].series.size(); ++row) {
    std::vector<std::string> cells{std::to_string(runs[0].series[row].first)};
    for (const auto& r : runs) {
      cells.push_back(row < r.series.size() ? stats::Table::num(r.series[row].second)
                                            : std::string("-"));
    }
    std::cout << cells[0];
    for (std::size_t c = 1; c < cells.size(); ++c) std::cout << "," << cells[c];
    std::cout << "\n";
    csv_rows.push_back(std::move(cells));
  }

  if (argc > 1) {
    const std::string dir = argv[1];
    std::string header = "event";
    for (const auto& r : runs) header += "," + r.label;
    stats::write_csv_file(dir + "/fig7.csv", header, csv_rows);
    stats::write_series_gnuplot(dir + "/fig7.gp", dir + "/fig7.csv",
                                "Fig. 7 -- average IRQ latency over IRQ events",
                                runs.size());
  }
  return 0;
}
