#include "fig6_common.hpp"

#include <ostream>

#include "exp/batch_runner.hpp"
#include "exp/run_result.hpp"
#include "exp/seed.hpp"
#include "exp/sweep_runner.hpp"
#include "exp/system_pool.hpp"
#include "fault/fault_engine.hpp"
#include "fault/oracle.hpp"
#include "hv/overhead_model.hpp"
#include "stats/export.hpp"
#include "stats/table.hpp"
#include "workload/generators.hpp"

namespace rthv::bench {

using sim::Duration;

namespace {

Duration effective_bottom(const core::SystemConfig& cfg) {
  const hw::CpuModel cpu(cfg.platform.cpu_freq_hz, cfg.platform.cpi_milli);
  const hw::MemorySystem mem(cfg.platform.ctx_invalidate_instructions,
                             cfg.platform.ctx_writeback_cycles);
  const hv::OverheadModel oh(cpu, mem, cfg.overheads);
  return oh.effective_bottom_cost(cfg.sources[0].c_bottom);
}

}  // namespace

Fig6Result run_fig6(const Fig6Config& config) {
  auto base = core::SystemConfig::paper_baseline();
  // Single-core experiment: every partition and the measured source live on
  // core 0 (the PartitionSpec/IrqSourceSpec default), stated explicitly now
  // that configs carry core assignments.
  base.interconnect.num_cores = 1;
  for (auto& p : base.partitions) p.core = 0;
  for (auto& s : base.sources) s.core = 0;
  const Duration c_bh_eff = effective_bottom(base);
  // d_min fixed at the highest configured load's lambda.
  int max_load = 1;
  for (const int l : config.load_percent) max_load = std::max(max_load, l);
  const auto d_min = Duration::ns(c_bh_eff.count_ns() * 100 / max_load);

  if (config.monitored) {
    base.mode = hv::TopHandlerMode::kInterposing;
    base.sources[0].monitor = core::MonitorKind::kDeltaMin;
    base.sources[0].d_min = d_min;
  }
  // UINTC-style variant: hardware vectors the source past the hypervisor;
  // the monitor (if any) keeps judging the same activations as a shadow, so
  // admission statistics stay comparable with the interposing run.
  if (config.direct) base.sources[0].direct_delivery = true;

  const Duration hist_lo = Duration::zero();
  const Duration hist_hi = Duration::us(8500);
  const Duration hist_bin = Duration::us(100);

  // A fault plan is parsed once and shared (read-only) by all runs; each
  // run arms its own engine with a seed derived from the run index.
  fault::FaultPlan plan;
  if (!config.fault_plan.empty()) {
    plan = fault::load_fault_plan_file(config.fault_plan);
  }
  std::vector<fault::OracleReport> oracle_reports(config.load_percent.size());

  // Pre-size the event core from the sweep plan: all runs share one horizon
  // (the fault plan's when set), and the steady-state pending set of a
  // single-source system stays small.
  const Duration horizon =
      !plan.empty() && plan.horizon.is_positive() ? plan.horizon : Duration::s(1000);
  base.sim_horizon_hint = horizon;
  base.expected_pending_events = 128;

  // One independent run per load step. Each run's seed depends only on its
  // index (config.seed + i, the original sequential seed sequence), so the
  // merged result is bit-identical for any job count.
  std::vector<exp::RunResult> runs;
  if (config.batch && plan.empty() && !config.trace) {
    // Batched path: pooled systems recycled by snapshot warm-start and
    // executed by the work-stealing BatchRunner. Fault plans install
    // per-system deadline transforms that would dangle across a recycle,
    // and tracing makes every warm restore pay an O(ring) copy, so those
    // configurations keep the classic per-run construction below (the two
    // paths produce bit-identical results either way; see test_batch).
    exp::SystemPool::Options pool_options;
    pool_options.warm_start = config.warm_start;
    pool_options.keep_completions = true;
    exp::SystemPool pool(base, pool_options);
    exp::BatchRunner runner(exp::BatchOptions{.jobs = config.jobs, .chunk = config.chunk});
    runs = runner.map(pool, config.load_percent.size(),
                      [&](std::size_t i, core::HypervisorSystem& system) {
                        const int load = config.load_percent[i];
                        const auto lambda = Duration::ns(c_bh_eff.count_ns() * 100 / load);
                        workload::ExponentialTraceGenerator gen(
                            lambda, config.seed + i,
                            config.enforce_floor ? d_min : Duration::zero());
                        system.attach_trace(0, gen.generate(config.irqs_per_load));
                        system.run(horizon);
                        auto out = exp::RunResult::capture(system);
                        out.fill_histogram(hist_lo, hist_hi, hist_bin);
                        return out;
                      });
  } else {
    exp::SweepRunner runner(config.jobs);
    runs = runner.map(config.load_percent.size(), [&](std::size_t i) {
      core::HypervisorSystem system(base);
      if ((config.trace && i == 0) || !plan.empty()) system.enable_tracing();
      const int load = config.load_percent[i];
      const auto lambda = Duration::ns(c_bh_eff.count_ns() * 100 / load);
      workload::ExponentialTraceGenerator gen(
          lambda, config.seed + i, config.enforce_floor ? d_min : Duration::zero());
      system.attach_trace(0, gen.generate(config.irqs_per_load));
      system.keep_completions(true);
      fault::FaultEngine engine(system, plan, exp::derive_seed(config.seed, i));
      if (!plan.empty()) engine.arm();
      system.run(horizon);
      if (!plan.empty()) {
        const fault::InterferenceOracle oracle(
            fault::InterferenceOracle::params_from(system));
        oracle_reports[i] = oracle.verify(system.trace());
      }
      auto out = exp::RunResult::capture(system);
      out.fill_histogram(hist_lo, hist_hi, hist_bin);
      return out;
    });
  }

  Fig6Result result{.recorder = {},
                    .histogram = stats::Histogram(hist_lo, hist_hi, hist_bin),
                    .per_load = {},
                    .d_min = d_min,
                    .c_bh_eff = c_bh_eff,
                    .metrics = {},
                    .trace = {},
                    .trace_meta = {},
                    .trace_dropped = 0};

  // Merge in load order: cumulative statistics match the sequential run.
  for (auto& run : runs) {
    result.per_load.push_back(run.recorder);
    result.histogram.merge(*run.histogram);
    result.recorder.merge(run.recorder);
    result.tdma_switches += run.tdma_switches;
    result.interpose_switches += run.interpose_switches;
    result.deferred_switches += run.deferred_switches;
    result.denied_by_monitor += run.denied_by_monitor;
    result.lost_raises += run.lost_raises;
    result.metrics.merge(run.metrics);
    result.trace.insert(result.trace.end(), run.trace.begin(), run.trace.end());
    if (result.trace_meta.partition_names.empty()) {
      result.trace_meta = std::move(run.trace_meta);
    }
    result.trace_dropped += run.trace_dropped;
  }
  for (const auto& report : oracle_reports) {
    result.oracle_windows += report.windows_checked;
    result.oracle_violations +=
        report.violations.size() + report.cost_violations.size();
  }
  for (const auto& counter : result.metrics.counters) {
    if (counter.name.starts_with("fault/injected/")) {
      result.fault_injected += counter.value;
    }
  }
  return result;
}

void print_fig6_report(std::ostream& os, const char* title, const Fig6Config& config,
                       const Fig6Result& result) {
  os << "=== " << title << " ===\n";
  os << "T_TDMA = 14000us, T_i = 6000us, C_TH = 5us, C_BH = 40us, C'_BH = "
     << result.c_bh_eff << ", d_min = " << result.d_min << "\n";
  os << "loads:";
  for (const int l : config.load_percent) os << " " << l << "%";
  os << ", " << config.irqs_per_load << " IRQs per load\n\n";

  stats::Table table({"U_IRQ", "direct", "interposed", "delayed", "avg [us]",
                      "p99 [us]", "max [us]"});
  for (std::size_t i = 0; i < result.per_load.size(); ++i) {
    const auto& r = result.per_load[i];
    table.add_row({std::to_string(config.load_percent[i]) + "%",
                   stats::Table::num(r.fraction(stats::HandlingClass::kDirect) * 100) + "%",
                   stats::Table::num(r.fraction(stats::HandlingClass::kInterposed) * 100) + "%",
                   stats::Table::num(r.fraction(stats::HandlingClass::kDelayed) * 100) + "%",
                   stats::Table::num(r.all().mean().as_us()),
                   stats::Table::num(r.all().percentile(99).as_us()),
                   stats::Table::num(r.all().max().as_us())});
  }
  const auto& all = result.recorder;
  table.add_row({"cumulative",
                 stats::Table::num(all.fraction(stats::HandlingClass::kDirect) * 100) + "%",
                 stats::Table::num(all.fraction(stats::HandlingClass::kInterposed) * 100) + "%",
                 stats::Table::num(all.fraction(stats::HandlingClass::kDelayed) * 100) + "%",
                 stats::Table::num(all.all().mean().as_us()),
                 stats::Table::num(all.all().percentile(99).as_us()),
                 stats::Table::num(all.all().max().as_us())});
  table.write(os);

  os << "\ncontext switches: tdma " << result.tdma_switches << ", interpose "
     << result.interpose_switches << ", deferred boundaries " << result.deferred_switches
     << ", denied by monitor " << result.denied_by_monitor << ", lost raises "
     << result.lost_raises << "\n";
  if (result.fault_injected > 0 || result.oracle_windows > 0) {
    os << "fault injection: " << result.fault_injected
       << " actions; interference oracle checked " << result.oracle_windows
       << " windows, " << result.oracle_violations << " violations\n";
  }
  os << "\nlatency histogram over " << result.recorder.total() << " IRQs (100us bins):\n";
  result.histogram.write_ascii(os);
  os << "\n";
}

void export_fig6(const std::string& dir, const std::string& name, const char* title,
                 const Fig6Result& result) {
  const std::string csv = dir + "/" + name + ".csv";
  stats::write_histogram_csv(csv, result.histogram);
  stats::write_histogram_gnuplot(dir + "/" + name + ".gp", csv, title);
}

void export_fig6_observability(const Fig6Result& result, const std::string& trace_out,
                               const std::string& metrics_out) {
  if (!trace_out.empty()) {
    stats::write_chrome_trace_file(trace_out, result.trace, result.trace_meta,
                                   result.trace_dropped);
  }
  if (!metrics_out.empty()) {
    if (metrics_out.ends_with(".txt")) {
      stats::write_metrics_text_file(metrics_out, result.metrics);
    } else {
      stats::write_metrics_json_file(metrics_out, result.metrics);
    }
  }
}

}  // namespace rthv::bench
