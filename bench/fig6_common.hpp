// Shared harness for the Fig. 6 experiments (Section 6.1).
//
// Paper setup: two 6000 us application partitions + 2000 us housekeeping
// partition (T_TDMA = 14000 us), one monitored IRQ source subscribed by
// partition 2, C_TH = 5 us, C_BH = 40 us. IRQ interarrival times follow an
// exponential distribution; the long-term bottom-handler load U_IRQ is set
// by lambda = C'_BH / U_IRQ for U_IRQ in {1 %, 5 %, 10 %}, 5000 IRQs per
// load, 15000 total (histograms are cumulative over all loads). The
// monitoring distance d_min is a *system* property fixed at the highest
// load's lambda (C'_BH / 10 %), so lighter loads conform more often --
// matching the paper's reported 40/40/20 split in Fig. 6b.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/hypervisor_system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "stats/histogram.hpp"

namespace rthv::bench {

struct Fig6Config {
  bool monitored = false;        // Fig. 6b/6c: modified top handler + d_min monitor
  bool enforce_floor = false;    // Fig. 6c: interarrival floored at d_min
  bool direct = false;           // UINTC-style hardware direct delivery for source 0
  std::size_t irqs_per_load = 5000;
  std::vector<int> load_percent = {1, 5, 10};
  std::uint64_t seed = 2014;     // DAC'14
  std::size_t jobs = 1;          // worker threads; results identical for any value
  bool trace = false;            // record a typed trace of the first load step
  /// Route the sweep through the batched campaign engine (SystemPool +
  /// BatchRunner). Results are bit-identical to the classic path; tracing
  /// and fault-plan configurations fall back to it (see run_fig6).
  bool batch = false;
  bool warm_start = true;        // batch only: snapshot-restore vs rebuild
  std::size_t chunk = 16;        // batch only: run indices per steal chunk
  /// Fault-injection plan file (empty = none). Each load step runs the plan
  /// with its own derived seed and is replayed through the interference
  /// oracle; violations are merged into the result.
  std::string fault_plan;
};

struct Fig6Result {
  stats::LatencyRecorder recorder;                // cumulative over all loads
  stats::Histogram histogram;                     // latency histogram
  std::vector<stats::LatencyRecorder> per_load;   // one per load step
  std::uint64_t tdma_switches = 0;
  std::uint64_t interpose_switches = 0;
  std::uint64_t deferred_switches = 0;
  std::uint64_t denied_by_monitor = 0;
  std::uint64_t lost_raises = 0;
  sim::Duration d_min;
  sim::Duration c_bh_eff;
  obs::MetricsSnapshot metrics;        // merged over all loads, in load order
  std::vector<obs::TraceEvent> trace;  // first load step (if Fig6Config::trace)
  obs::TraceMeta trace_meta;
  std::uint64_t trace_dropped = 0;
  std::uint64_t fault_injected = 0;     // fault-engine actions over all loads
  std::uint64_t oracle_windows = 0;     // admission windows the oracle checked
  std::uint64_t oracle_violations = 0;  // Eq. 14 / Eq. 13 violations (must be 0)
};

/// Runs the experiment and returns cumulative + per-load statistics.
[[nodiscard]] Fig6Result run_fig6(const Fig6Config& config);

/// Prints the paper-style report: per-load table, cumulative class split,
/// averages and the latency histogram.
void print_fig6_report(std::ostream& os, const char* title, const Fig6Config& config,
                       const Fig6Result& result);

/// Writes <dir>/<name>.csv (the latency histogram) and <dir>/<name>.gp (a
/// gnuplot script rendering it in the style of the paper's Fig. 6 panels).
void export_fig6(const std::string& dir, const std::string& name, const char* title,
                 const Fig6Result& result);

/// Writes the --trace-out (Chrome trace-event JSON, Perfetto loadable) and
/// --metrics-out (JSON, or text when the path ends in ".txt") artefacts;
/// empty paths are skipped.
void export_fig6_observability(const Fig6Result& result, const std::string& trace_out,
                               const std::string& metrics_out);

}  // namespace rthv::bench
