// Reproduces Fig. 6c: monitoring enabled and all interarrival times floored
// at d_min, so the monitoring condition is never violated.
//
// Paper result (shape): direct ~40 %, interposed ~60 %, no delayed IRQs;
// average ~150 us (~16x better than Fig. 6a); worst-case latencies are no
// longer defined by the TDMA cycle length.
//
// usage: fig6c_no_violations [--jobs N] [--trace-out f.json] [--metrics-out f.json]
//        [--batch] [--no-warm-start] [--chunk N] [export-dir]
#include <iostream>

#include "exp/cli.hpp"
#include "fig6_common.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  const auto cli = rthv::exp::parse_cli(argc, argv);
  rthv::bench::Fig6Config config;
  config.monitored = true;
  config.enforce_floor = true;
  config.jobs = cli.jobs;
  config.trace = !cli.trace_out.empty();
  config.fault_plan = cli.fault_plan;
  config.batch = cli.batch;
  config.warm_start = cli.warm_start;
  config.chunk = cli.chunk;
  const auto result = rthv::bench::run_fig6(config);
  rthv::bench::print_fig6_report(std::cout, "Fig. 6c -- monitoring enabled, no violations",
                                 config, result);
  if (!cli.positional.empty()) {
    rthv::bench::export_fig6(cli.positional[0], "fig6c",
                             "Fig. 6c -- monitoring enabled, no violations", result);
  }
  rthv::bench::export_fig6_observability(result, cli.trace_out, cli.metrics_out);

  // The headline improvement factor against the unmonitored run.
  rthv::bench::Fig6Config unmon = config;
  unmon.monitored = false;
  unmon.enforce_floor = false;
  const auto baseline = rthv::bench::run_fig6(unmon);
  const double factor = static_cast<double>(baseline.recorder.all().mean().count_ns()) /
                        static_cast<double>(result.recorder.all().mean().count_ns());
  std::cout << "average-latency improvement over the unmonitored case: "
            << rthv::stats::Table::num(factor) << "x (paper: ~16x)\n";
  std::cout << "paper reference: direct ~40%, interposed ~60%, delayed 0%, average "
               "~150us, worst case TDMA-independent\n";
  return 0;
}
