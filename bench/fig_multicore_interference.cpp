// Multi-core interference sweep: how much hard-RT interrupt latency is lost
// to shared-interconnect contention, and how much of it cache coloring and
// MemGuard-style bandwidth regulation win back.
//
// One fixed scenario: core 0 hosts an application partition plus the hard-RT
// subscriber of a monitored, interposing IRQ source (the paper-baseline
// source, bh_accesses = 2000); every additional core runs a best-effort
// partition hammering the interconnect. Three sweeps:
//
//  1. Core count: 1..4 hog-loaded cores, uncolored and unregulated -- the
//     raw cost of sharing the interconnect. Guest demand is accounted at
//     preemption points, so an unregulated hog dumps slot-sized bursts that
//     already saturate the conflict ratio: the big step is 1 -> 2 cores, and
//     extra hogs add little. Coloring and regulation are what win it back.
//  2. Cache coloring: 4 cores, RT pair colored into / away from the hogs'
//     color set.
//  3. Bandwidth regulation: 4 cores, overlapping colors, sweeping the hogs'
//     per-window budget -- regulation must tighten the hard-RT tail
//     monotonically as the budget shrinks.
//
// Each row additionally replays the run's trace through the interference
// oracle with contention folded into Eq. 14 (non-zero exit on violation).
// Rows are independent simulations sharded over --jobs threads; row seeds
// are fixed, so output is bit-identical for any job count.
//
// usage: fig_multicore_interference [--jobs N]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/multicore_system.hpp"
#include "core/system_config.hpp"
#include "exp/cli.hpp"
#include "exp/sweep_runner.hpp"
#include "fault/oracle.hpp"
#include "stats/table.hpp"
#include "workload/generators.hpp"

using namespace rthv;
using sim::Duration;

namespace {

constexpr std::size_t kIrqs = 2000;
constexpr std::uint64_t kSeed = 2014;

/// Core 0: app + hard-RT subscriber; cores 1..n-1: one hog each.
core::SystemConfig scenario(std::uint32_t cores, std::uint32_t rt_mask,
                            std::uint32_t hog_mask, std::uint64_t hog_budget) {
  core::SystemConfig cfg;
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.interconnect.num_cores = cores;
  cfg.interconnect.num_colors = 16;
  // 40 ns of extra DRAM/LLC cost per access under full saturation; with the
  // hogs' 10 accesses/us (1000 per 100 us epoch) pressure stays well below
  // saturation, so core count and budgets move the charge visibly.
  cfg.interconnect.conflict_access_ns = 40;
  cfg.interconnect.half_load_accesses = 2000;
  if (hog_budget > 0) {
    cfg.interconnect.budgets.assign(cores, hw::CoreBandwidthBudget{});
    for (std::uint32_t c = 1; c < cores; ++c) {
      cfg.interconnect.budgets[c] = {hog_budget, Duration::us(100)};
    }
  }

  core::PartitionSpec app;
  app.name = "app";
  app.slot_length = Duration::us(6000);
  app.core = 0;
  app.color_mask = rt_mask;
  cfg.partitions.push_back(app);

  core::PartitionSpec rt;
  rt.name = "hard-rt";
  rt.slot_length = Duration::us(6000);
  rt.core = 0;
  rt.color_mask = rt_mask;
  cfg.partitions.push_back(rt);

  for (std::uint32_t c = 1; c < cores; ++c) {
    core::PartitionSpec hog;
    hog.name = "hog" + std::to_string(c);
    hog.slot_length = Duration::us(6000);
    hog.core = c;
    hog.color_mask = hog_mask;
    hog.mem_accesses_per_us = 10;
    cfg.partitions.push_back(hog);
  }

  core::IrqSourceSpec src;
  src.name = "rt-irq";
  src.subscriber = 1;
  src.core = 0;
  src.c_top = Duration::us(5);
  src.c_bottom = Duration::us(40);
  src.monitor = core::MonitorKind::kDeltaMin;
  src.d_min = Duration::us(1444);
  src.bh_accesses = 2000;
  cfg.sources.push_back(src);
  return cfg;
}

struct RowOut {
  Duration avg;
  Duration p99;
  Duration max;
  std::uint64_t stall_ns;
  std::uint64_t charges;
  std::int64_t charge_ns;
  std::uint64_t oracle_violations;
};

// Every row within a sweep replays the SAME seed: the arrival sequence is
// identical across rows, so any latency difference is contention-induced.
RowOut run(const core::SystemConfig& cfg) {
  core::MulticoreSystem mc(cfg);
  mc.enable_tracing();
  workload::ExponentialTraceGenerator gen(Duration::us(1444), kSeed,
                                          Duration::us(200));
  mc.attach_trace(0, gen.generate(kIrqs));
  mc.run(Duration::s(600));

  const fault::InterferenceOracle oracle(
      fault::InterferenceOracle::params_from(mc.core(0)));
  const auto report = oracle.verify(mc.core(0).trace());
  const auto& rec = mc.core(0).recorder().all();
  return RowOut{rec.mean(), rec.percentile(99), rec.max(),
                mc.interconnect().counters().stall_ns_total,
                report.contention_charges, report.total_charge_ns,
                report.violations.size() + report.cost_violations.size()};
}

std::vector<std::string> row(const std::string& label, const RowOut& r) {
  const std::int64_t avg_charge =
      r.charges == 0 ? 0 : r.charge_ns / static_cast<std::int64_t>(r.charges);
  return {label,
          stats::Table::num(r.avg.as_us()),
          stats::Table::num(r.p99.as_us()),
          stats::Table::num(r.max.as_us()),
          std::to_string(r.stall_ns / 1000),
          std::to_string(avg_charge),
          std::to_string(r.oracle_violations)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = exp::parse_cli(argc, argv);
  exp::SweepRunner runner(cli.jobs);
  std::uint64_t violations = 0;
  const std::vector<std::string> header = {"config",   "avg [us]",  "p99 [us]",
                                           "max [us]", "stall [us]",
                                           "avg charge [ns]", "oracle"};

  std::cout << "=== fig_multicore_interference: hard-RT source on core 0, "
            << kIrqs << " IRQs per row ===\n\n";

  // Sweep 1: core count, uncolored, unregulated.
  {
    std::vector<core::SystemConfig> cfgs;
    for (std::uint32_t cores = 1; cores <= 4; ++cores) {
      cfgs.push_back(scenario(cores, 0x00FFu, 0x00FFu, 0));
    }
    const auto rows = runner.map(cfgs.size(), [&](std::size_t i) {
      return run(cfgs[i]);
    });
    stats::Table table(header);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      table.add_row(row(std::to_string(i + 1) + " cores", rows[i]));
      violations += rows[i].oracle_violations;
    }
    std::cout << "-- interconnect sharing cost (no coloring, no regulation)\n";
    table.write(std::cout);
    std::cout << "\n";
  }

  // Sweep 2: coloring on/off at 4 cores.
  {
    const std::vector<std::pair<std::string, core::SystemConfig>> cases = {
        {"overlapping colors", scenario(4, 0x00FFu, 0x00FFu, 0)},
        {"RT colored away", scenario(4, 0x000Fu, 0xFFF0u, 0)},
    };
    const auto rows = runner.map(cases.size(), [&](std::size_t i) {
      return run(cases[i].second);
    });
    stats::Table table(header);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      table.add_row(row(cases[i].first, rows[i]));
      violations += rows[i].oracle_violations;
    }
    std::cout << "-- cache coloring (4 cores)\n";
    table.write(std::cout);
    std::cout << "\n";
  }

  // Sweep 3: hog bandwidth budget at 4 cores, overlapping colors.
  {
    const std::vector<std::uint64_t> budgets = {0, 800, 600, 400, 200};
    const auto rows = runner.map(budgets.size(), [&](std::size_t i) {
      return run(scenario(4, 0x00FFu, 0x00FFu, budgets[i]));
    });
    stats::Table table(header);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::string label = budgets[i] == 0
                                    ? "unregulated"
                                    : "budget " + std::to_string(budgets[i]) +
                                          "/100us";
      table.add_row(row(label, rows[i]));
      violations += rows[i].oracle_violations;
    }
    std::cout << "-- hog bandwidth regulation (4 cores, overlapping colors)\n";
    table.write(std::cout);
    std::cout << "\n";
  }

  if (violations > 0) {
    std::cerr << "interference oracle reported " << violations
              << " violation(s)\n";
    return 1;
  }
  std::cout << "interference oracle: all rows clean (contention folded into "
               "Eq. 14)\n";
  return 0;
}
