// Reproduces the Section 6.2 table: memory and runtime overhead of the
// interposed interrupt handling.
//
// Paper (ARM926ej-s, gcc -O1):
//   code:   whole implementation 1120 B = scheduler modification 392 B
//           + modified top handler 456 B + monitoring function 272 B
//   data:   28 B (monitoring scheme state)
//   runtime: C_Mon = 128 instructions, C_sched = 877 instructions,
//            context switch ~5000 instructions + ~5000 cycles writeback;
//            ~10 % more context switches in scenario 2 with d_min = lambda.
//
// On the simulated platform the *runtime* budgets are the model inputs and
// are reported back together with the measured per-category cycle totals of
// a scenario-2 run; static ARM code size is not reproducible on a simulator
// (see EXPERIMENTS.md), so the code-size rows report the paper's reference
// values alongside the size of this implementation's state objects.
#include <iostream>

#include "core/hypervisor_system.hpp"
#include "hv/overhead_model.hpp"
#include "mon/learning_monitor.hpp"
#include "mon/monitor.hpp"
#include "stats/table.hpp"
#include "workload/generators.hpp"

using namespace rthv;
using sim::Duration;

namespace {

struct RunStats {
  std::uint64_t ctx_switches;
  std::uint64_t monitor_cycles;
  std::uint64_t sched_cycles;
  std::uint64_t ctx_cycles;
  std::uint64_t writeback_cycles;
  std::uint64_t monitor_checks;
};

RunStats run_scenario(bool monitored, Duration lambda, Duration d_min,
                      std::size_t irqs) {
  auto cfg = core::SystemConfig::paper_baseline();
  if (monitored) {
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    cfg.sources[0].d_min = d_min;
  }
  core::HypervisorSystem system(cfg);
  workload::ExponentialTraceGenerator gen(lambda, 62u);
  system.attach_trace(0, gen.generate(irqs));
  system.run(Duration::s(300));
  const auto& cpu = system.platform().cpu();
  return RunStats{
      system.hypervisor().context_switches().total(),
      cpu.cycles_in(hw::WorkCategory::kMonitor),
      cpu.cycles_in(hw::WorkCategory::kSchedManipulation),
      cpu.cycles_in(hw::WorkCategory::kContextSwitch),
      cpu.cycles_in(hw::WorkCategory::kCacheWriteback),
      system.hypervisor().irq_stats().monitor_checked,
  };
}

}  // namespace

int main() {
  const auto cfg = core::SystemConfig::paper_baseline();
  const hw::CpuModel cpu(cfg.platform.cpu_freq_hz, cfg.platform.cpi_milli);
  const hw::MemorySystem mem(cfg.platform.ctx_invalidate_instructions,
                             cfg.platform.ctx_writeback_cycles);
  const hv::OverheadModel oh(cpu, mem, cfg.overheads);

  std::cout << "=== Section 6.2 -- memory and runtime overhead ===\n\n";

  stats::Table code({"component", "paper (ARM, gcc -O1)", "this implementation"});
  code.add_row({"TDMA scheduler modification", "392 B code", "see src/hv/tdma_scheduler.*"});
  code.add_row({"modified top handler (Fig. 4b)", "456 B code", "see src/hv/hypervisor.cpp"});
  code.add_row({"monitoring function", "272 B code", "see src/mon/monitor.*"});
  code.add_row({"total", "1120 B code", "n/a on simulator (host binary)"});
  code.add_row({"monitor data overhead", "28 B",
                "sizeof(DeltaMinMonitor) = " +
                    std::to_string(sizeof(mon::DeltaMinMonitor)) + " B (host, " +
                    "l=1 payload: 2x8 B + flag)"});
  code.write(std::cout);

  std::cout << "\nruntime budgets (model inputs, 200 MHz / 5 ns per cycle):\n";
  stats::Table runtime({"overhead", "paper", "modelled time"});
  runtime.add_row({"C_Mon (monitoring function)", "128 instructions",
                   oh.monitor_cost().to_string()});
  runtime.add_row({"C_sched (scheduler manipulation)", "877 instructions",
                   oh.sched_manipulation_cost().to_string()});
  runtime.add_row({"context switch (invalidate + writeback)",
                   "~5000 instr + ~5000 cycles", oh.context_switch_cost().to_string()});
  runtime.add_row({"C'_BH (Eq. 13, C_BH = 40us)", "-",
                   oh.effective_bottom_cost(Duration::us(40)).to_string()});
  runtime.add_row({"C'_TH (Eq. 15, C_TH = 5us)", "-",
                   oh.effective_top_cost(Duration::us(5)).to_string()});
  runtime.write(std::cout);

  // Scenario-2 runs with d_min = lambda: context-switch increase per load.
  // The increase scales with the interposition rate, i.e. with the IRQ
  // load; the paper's ~10 % corresponds to the low-load end of the sweep
  // (every interposition costs two additional switches, Eq. 13, against a
  // fixed 3-switches-per-cycle TDMA baseline).
  const Duration c_bh_eff = oh.effective_bottom_cost(Duration::us(40));
  constexpr std::size_t kIrqs = 5000;
  std::cout << "\nmeasured scenario-2 context-switch increase (d_min = lambda, " << kIrqs
            << " IRQs per load):\n";
  stats::Table increase_table(
      {"U_IRQ", "ctx switches unmon", "ctx switches mon", "increase", "paper"});
  RunStats mon_hi{};  // keep the 10% run for the cycle breakdown below
  RunStats unmon_hi{};
  for (const int load : {1, 5, 10}) {
    const auto lambda = Duration::ns(c_bh_eff.count_ns() * 100 / load);
    const auto unmon = run_scenario(false, lambda, lambda, kIrqs);
    const auto mon = run_scenario(true, lambda, lambda, kIrqs);
    const double increase =
        (static_cast<double>(mon.ctx_switches) / static_cast<double>(unmon.ctx_switches) -
         1.0) * 100.0;
    increase_table.add_row({std::to_string(load) + "%",
                            std::to_string(unmon.ctx_switches),
                            std::to_string(mon.ctx_switches),
                            stats::Table::num(increase) + "%",
                            load == 1 ? "~10%" : "-"});
    if (load == 10) {
      mon_hi = mon;
      unmon_hi = unmon;
    }
  }
  increase_table.write(std::cout);

  std::cout << "\ncycle breakdown of the 10% run:\n";
  stats::Table measured({"quantity", "unmonitored", "monitored", "paper"});
  measured.add_row({"monitor checks (C_Mon paid)", "0",
                    std::to_string(mon_hi.monitor_checks), "-"});
  measured.add_row({"monitor cycles", std::to_string(unmon_hi.monitor_cycles),
                    std::to_string(mon_hi.monitor_cycles), "128/check"});
  measured.add_row({"sched-manipulation cycles", std::to_string(unmon_hi.sched_cycles),
                    std::to_string(mon_hi.sched_cycles), "877/interpose + tick"});
  measured.add_row({"context-switch cycles", std::to_string(unmon_hi.ctx_cycles),
                    std::to_string(mon_hi.ctx_cycles), "5000/switch"});
  measured.add_row({"cache-writeback cycles", std::to_string(unmon_hi.writeback_cycles),
                    std::to_string(mon_hi.writeback_cycles), "5000/switch"});
  measured.write(std::cout);
  return 0;
}
