// Perf-regression harness (tentpole part 3).
//
// Runs a google-benchmark suite over the simulator's hot paths (event-queue
// schedule/cancel/pop at several pending depths, the hypervisor-like mixed
// pattern) plus full-system events/sec throughput probes, and writes the
// results as BENCH_sim_throughput.json:
//
//   { "schema": "rthv-perf-v1", "git_rev": "...", "date": "...",
//     "benchmarks": { "<name>": { "ns_per_op": ..., "events_per_sec": ... } } }
//
// The JSON at the repo root is the committed baseline; future PRs re-run
// `cmake --build build --target perf_report_json` and diff against it, or
// let the harness do the diff: `--compare <baseline.json>` re-runs the
// suite and exits nonzero if any committed benchmark regressed by more
// than 10% (ci/run_ci.sh runs this as its perf gate).
//
// usage: perf_report [output.json] [--compare baseline.json] [--benchmark_* flags]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/hypervisor_system.hpp"
#include "core/multicore_system.hpp"
#include "exp/batch_runner.hpp"
#include "exp/sweep_runner.hpp"
#include "exp/system_pool.hpp"
#include "mon/monitor.hpp"
#include "obs/trace_ring.hpp"
#include "sim/event_queue.hpp"
#include "workload/generators.hpp"

using namespace rthv;
using sim::Duration;
using sim::TimePoint;

namespace {

// --- benchmark bodies -------------------------------------------------------

void schedule_pop(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  queue.reserve(pending + 1);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    t += 1000;
    queue.schedule(TimePoint::at_ns(t), [] {});
  }
  for (auto _ : state) {
    t += 1000;
    queue.schedule(TimePoint::at_ns(t), [] {});
    benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void schedule_cancel(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  queue.reserve(pending + 1);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    t += 1000;
    queue.schedule(TimePoint::at_ns(t), [] {});
  }
  for (auto _ : state) {
    t += 1000;
    const sim::EventId id = queue.schedule(TimePoint::at_ns(t), [] {});
    benchmark::DoNotOptimize(queue.cancel(id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void mixed_hv_pattern(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    t += 5000;
    queue.schedule(TimePoint::at_ns(t + 1444), [&sink] { ++sink; });
    const auto completion = queue.schedule(TimePoint::at_ns(t + 40000), [&sink, t] {
      sink += static_cast<std::uint64_t>(t);
    });
    queue.cancel(completion);
    queue.schedule(TimePoint::at_ns(t + 45000), [&sink, t] {
      sink += static_cast<std::uint64_t>(t) + 1;
    });
    benchmark::DoNotOptimize(queue.pop());
    queue.pop().callback();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Full-system probe: simulated events per wall-clock second for the paper's
// monitored baseline. `items` are *simulator events*, the unit every other
// subsystem's work is expressed in.
void full_system_events(benchmark::State& state) {
  constexpr std::size_t kIrqs = 2000;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto cfg = core::SystemConfig::paper_baseline();
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    cfg.sources[0].d_min = Duration::us(1444);
    core::HypervisorSystem system(cfg);
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 7, Duration::us(1444));
    system.attach_trace(0, gen.generate(kIrqs));
    benchmark::DoNotOptimize(system.run(Duration::s(60)));
    events += system.simulator().executed_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void full_system_irqs(benchmark::State& state) {
  constexpr std::size_t kIrqs = 2000;
  std::uint64_t irqs = 0;
  for (auto _ : state) {
    auto cfg = core::SystemConfig::paper_baseline();
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    cfg.sources[0].d_min = Duration::us(1444);
    core::HypervisorSystem system(cfg);
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 7, Duration::us(1444));
    system.attach_trace(0, gen.generate(kIrqs));
    irqs += system.run(Duration::s(60));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(irqs));
}

// Multi-core probe: the contended 4-core scenario (core 0 = app partition +
// monitored interposing hard-RT subscriber with an interconnect burst per
// bottom handler; cores 1-3 = overlapping-color bandwidth hogs) through the
// deterministic (time, core, seq) merge loop. `items` are completed IRQs, so
// the number is comparable with full_system/irqs: the gap is the price of
// the merge loop plus interconnect accounting.
void full_system_multicore_irqs(benchmark::State& state) {
  constexpr std::size_t kIrqs = 2000;
  std::uint64_t irqs = 0;
  for (auto _ : state) {
    core::SystemConfig cfg;
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.interconnect.num_cores = 4;
    cfg.interconnect.conflict_access_ns = 4;
    core::PartitionSpec app;
    app.name = "app";
    app.slot_length = Duration::us(6000);
    app.color_mask = 0x00FFu;
    cfg.partitions.push_back(app);
    core::PartitionSpec rt = app;
    rt.name = "rt";
    cfg.partitions.push_back(rt);
    for (std::uint32_t c = 1; c < 4; ++c) {
      core::PartitionSpec hog;
      hog.name = "hog" + std::to_string(c);
      hog.slot_length = Duration::us(6000);
      hog.core = c;
      hog.color_mask = 0x00FFu;
      hog.mem_accesses_per_us = 10;
      cfg.partitions.push_back(hog);
    }
    core::IrqSourceSpec src;
    src.name = "rt-irq";
    src.subscriber = 1;
    src.c_top = Duration::us(5);
    src.c_bottom = Duration::us(40);
    src.monitor = core::MonitorKind::kDeltaMin;
    src.d_min = Duration::us(1444);
    src.bh_accesses = 2000;
    cfg.sources.push_back(src);

    core::MulticoreSystem mc(cfg);
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 7, Duration::us(1444));
    mc.attach_trace(0, gen.generate(kIrqs));
    irqs += mc.run(Duration::s(60));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(irqs));
}

// --- IRQ hot-path phase breakdown -------------------------------------------
//
// Four rows under full_system/irqs_phases/ isolate where a monitored IRQ's
// wall-clock cost goes. Every row runs the same 2000-activation exponential
// trace shape per iteration, so ns_per_op values are directly comparable and
// adjacent differences attribute cost to one layer:
//
//   queue     event-queue work alone (schedule+pop per hot event, hv shape)
//   dispatch  + hypervisor top/bottom dispatch (monitor off, tracing off)
//   admit     + delta^- admission          (delta-min,  tracing off)
//   trace     + typed trace-ring emission  (delta-min,  tracing on)

std::uint64_t run_phase_system(core::MonitorKind monitor, bool tracing) {
  constexpr std::size_t kIrqs = 2000;
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = monitor;
  cfg.sources[0].d_min = Duration::us(1444);
  core::HypervisorSystem system(cfg);
  if (tracing) system.enable_tracing();
  workload::ExponentialTraceGenerator gen(Duration::us(1444), 7, Duration::us(1444));
  system.attach_trace(0, gen.generate(kIrqs));
  return system.run(Duration::s(60));
}

void irqs_phases_queue(benchmark::State& state) {
  constexpr std::size_t kIrqs = 2000;
  sim::EventQueue queue;
  // A live run keeps a handful of events pending (TDMA tick, guest
  // completions, far-future timers); seed that occupancy so pops pay
  // realistic bucket scans rather than empty-queue fast paths.
  std::int64_t t = 0;
  std::uint64_t sink = 0;
  for (int i = 0; i < 8; ++i) {
    queue.schedule(TimePoint::at_ns(1'000'000'000 + i * 1'000'000), [] {});
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < kIrqs; ++i) {
      t += 1'444'000;
      // Per admitted IRQ the fused hot path costs the queue two
      // schedule+pop round trips: the source timer fire and the decision
      // continuation at interposition end.
      queue.schedule(TimePoint::at_ns(t + 57'000), [&sink] { ++sink; });
      queue.pop().callback();
      queue.schedule(TimePoint::at_ns(t + 100'000), [&sink] { ++sink; });
      queue.pop().callback();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kIrqs));
}

void irqs_phases_dispatch(benchmark::State& state) {
  std::uint64_t irqs = 0;
  for (auto _ : state) irqs += run_phase_system(core::MonitorKind::kNone, false);
  state.SetItemsProcessed(static_cast<std::int64_t>(irqs));
}

void irqs_phases_admit(benchmark::State& state) {
  std::uint64_t irqs = 0;
  for (auto _ : state) irqs += run_phase_system(core::MonitorKind::kDeltaMin, false);
  state.SetItemsProcessed(static_cast<std::int64_t>(irqs));
}

void irqs_phases_trace(benchmark::State& state) {
  std::uint64_t irqs = 0;
  for (auto _ : state) irqs += run_phase_system(core::MonitorKind::kDeltaMin, true);
  state.SetItemsProcessed(static_cast<std::int64_t>(irqs));
}

// Cost of an RTHV_TRACE site with the ring disabled: this is what every
// instrumented hot path pays when nobody asked for a trace, and the
// committed baseline asserts it stays < 1 ns/event. ClobberMemory keeps the
// compiler from proving the ring stays disabled and deleting the loop body.
void trace_overhead_disabled(benchmark::State& state) {
  obs::TraceRing ring;  // never enabled; no buffer is ever allocated
  std::int64_t t = 0;
  for (auto _ : state) {
    ++t;
    RTHV_TRACE(ring, t, obs::TracePoint::kIrqPush, obs::TraceCategory::kIrq, 1u, 2u,
               static_cast<std::uint64_t>(t), 0);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(ring.emitted());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// The enabled-path cost for comparison (one 40-byte store + counter bumps).
void trace_overhead_enabled(benchmark::State& state) {
  obs::TraceRing ring;
  ring.set_enabled(true);
  std::int64_t t = 0;
  for (auto _ : state) {
    ++t;
    RTHV_TRACE(ring, t, obs::TracePoint::kIrqPush, obs::TraceCategory::kIrq, 1u, 2u,
               static_cast<std::uint64_t>(t), 0);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(ring.emitted());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Burst emission through TraceRing::BatchEmitter (the batched ring-slot
// reservation the hypervisor's fused batch-exit records use): one enabled
// check and one counter commit amortized over 16 events. ns_per_op is per
// *burst*; events_per_sec is the per-event rate comparable with
// obs/trace_overhead_enabled_ns.
void trace_overhead_enabled_batch(benchmark::State& state) {
  constexpr int kBurst = 16;
  obs::TraceRing ring;
  ring.set_enabled(true);
  std::int64_t t = 0;
  for (auto _ : state) {
    obs::TraceRing::BatchEmitter burst(ring);
    for (int k = 0; k < kBurst; ++k) {
      ++t;
      burst.emit(t, obs::TracePoint::kIrqPush, obs::TraceCategory::kIrq, 1u, 2u,
                 static_cast<std::uint64_t>(t), 0);
    }
    burst.commit();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(ring.emitted());
  state.SetItemsProcessed(state.iterations() * kBurst);
}

// --- batched campaign engine ------------------------------------------------
//
// The fig6b-shaped campaign shared by batch/runs_per_sec and
// sweep/runs_per_sec: the monitored paper baseline with short runs (3
// exponential IRQs at the 10% load shape) whose per-run inputs depend only
// on the run index. Both engines execute the identical per-run body and
// return a cheap scalar, so the pair isolates engine overhead -- system
// construction per run (sweep) vs snapshot warm-start recycling (batch) --
// rather than result-capture cost.

core::SystemConfig batch_campaign_config() {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.mode = hv::TopHandlerMode::kInterposing;
  cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
  cfg.sources[0].d_min = Duration::us(444);
  cfg.sim_horizon_hint = Duration::s(1000);
  cfg.expected_pending_events = 128;
  return cfg;
}

std::uint64_t batch_campaign_run(std::size_t i, core::HypervisorSystem& system) {
  workload::ExponentialTraceGenerator gen(Duration::us(444),
                                          2014 + static_cast<std::uint64_t>(i));
  system.attach_trace(0, gen.generate(3));
  return system.run(Duration::s(1000));
}

// One pool-recycle cycle: clear_traces() + restore from the pristine
// snapshot. This is the per-run fixed cost of the batched engine, the
// number that replaces full system construction (~microseconds) on every
// run after the first.
void batch_warm_start(benchmark::State& state) {
  exp::SystemPool pool(batch_campaign_config());
  auto lease = pool.acquire();
  for (auto _ : state) {
    core::HypervisorSystem& system = lease.begin_run();
    benchmark::DoNotOptimize(&system);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// 1000-run campaign on the batched engine. ns_per_op is per *campaign*;
// events_per_sec is runs/sec, directly comparable with sweep/runs_per_sec.
void batch_runs_per_sec(benchmark::State& state) {
  constexpr std::size_t kRuns = 1000;
  const auto cfg = batch_campaign_config();
  std::uint64_t irqs = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    exp::SystemPool pool(cfg);
    exp::BatchRunner runner(exp::BatchOptions{.jobs = 1, .chunk = 16});
    for (const auto done : runner.map(pool, kRuns, batch_campaign_run)) irqs += done;
    runs += kRuns;
  }
  benchmark::DoNotOptimize(irqs);
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}

// The same campaign on the classic construct-per-run SweepRunner: the
// reference the batched engine is gated against (see compare_against).
void sweep_runs_per_sec(benchmark::State& state) {
  constexpr std::size_t kRuns = 1000;
  const auto cfg = batch_campaign_config();
  std::uint64_t irqs = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    exp::SweepRunner runner(1);
    const auto done = runner.map(kRuns, [&cfg](std::size_t i) {
      core::HypervisorSystem system(cfg);
      return batch_campaign_run(i, system);
    });
    for (const auto d : done) irqs += d;
    runs += kRuns;
  }
  benchmark::DoNotOptimize(irqs);
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}

// Work-stealing under deliberate imbalance: two workers, contiguous shard
// deal, and a run cost that is 20x heavier in worker 0's half -- worker 1
// drains its light half and steals from the back of worker 0's deque. The
// JSON records the measured steal ratio alongside the campaign time.
void batch_steal_ratio(benchmark::State& state) {
  constexpr std::size_t kRuns = 128;
  const auto cfg = batch_campaign_config();
  std::uint64_t irqs = 0;
  double ratio_sum = 0.0;
  for (auto _ : state) {
    exp::SystemPool pool(cfg);
    exp::BatchRunner runner(exp::BatchOptions{.jobs = 2, .chunk = 4});
    const auto done = runner.map(
        pool, kRuns, [](std::size_t i, core::HypervisorSystem& system) {
          workload::ExponentialTraceGenerator gen(
              Duration::us(444), 2014 + static_cast<std::uint64_t>(i));
          system.attach_trace(0, gen.generate(i < kRuns / 2 ? 40 : 2));
          return system.run(Duration::s(1000));
        });
    for (const auto d : done) irqs += d;
    ratio_sum += runner.stats().steal_ratio();
  }
  benchmark::DoNotOptimize(irqs);
  state.counters["steal_ratio"] =
      ratio_sum / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kRuns));
}

// Monitor admission checks (the paper's delta-minus test): these sit on the
// IRQ hot path between queue pop and guest injection, so their cost belongs
// in the committed baseline next to the queue numbers.
void delta_min_admit(benchmark::State& state) {
  mon::DeltaMinMonitor monitor(Duration::us(100));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 73'000;
    benchmark::DoNotOptimize(monitor.record_and_check(TimePoint::at_ns(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void delta_vector_admit(benchmark::State& state) {
  mon::DeltaVector deltas;
  for (std::size_t i = 0; i < 5; ++i) {
    deltas.push_back(Duration::us(100 * static_cast<std::int64_t>(i + 1)));
  }
  mon::DeltaVectorMonitor monitor(deltas);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 73'000;
    benchmark::DoNotOptimize(monitor.record_and_check(TimePoint::at_ns(t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Batched admission: 16 activations judged per call through the
// record_and_check_batch API. ns_per_op is per *batch*; events_per_sec is
// the per-activation rate comparable with mon/delta_vector_admit.
void delta_vector_admit_batch(benchmark::State& state) {
  constexpr std::size_t kBatch = 16;
  mon::DeltaVector deltas;
  for (std::size_t i = 0; i < 5; ++i) {
    deltas.push_back(Duration::us(100 * static_cast<std::int64_t>(i + 1)));
  }
  mon::DeltaVectorMonitor monitor(deltas);
  TimePoint times[kBatch];
  std::uint8_t verdicts[kBatch];
  std::int64_t t = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      t += 73'000;
      times[i] = TimePoint::at_ns(t);
    }
    monitor.record_and_check_batch(times, kBatch, verdicts);
    benchmark::DoNotOptimize(verdicts);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}

// --- result collection ------------------------------------------------------

struct Measurement {
  double ns_per_op = 0.0;
  double events_per_sec = 0.0;
  double steal_ratio = -1.0;  // < 0 = benchmark reports no such counter
};

class CollectingReporter : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      Measurement m;
      // Always in nanoseconds, independent of the benchmark's display unit.
      m.ns_per_op = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) m.events_per_sec = it->second;
      const auto steal = run.counters.find("steal_ratio");
      if (steal != run.counters.end()) m.steal_ratio = steal->second;
      results_[run.benchmark_name()] = m;
    }
  }

  [[nodiscard]] const std::map<std::string, Measurement>& results() const {
    return results_;
  }

 private:
  std::map<std::string, Measurement> results_;
};

std::string shell_line(const char* cmd) {
  std::string out;
  if (FILE* pipe = popen(cmd, "r")) {
    char buf[256];
    if (fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
    pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out;
}

std::string utc_now() {
  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

void write_json(const std::string& path,
                const std::map<std::string, Measurement>& results) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "perf_report: cannot write " << path << "\n";
    std::exit(1);
  }
  const std::string rev = shell_line("git rev-parse --short HEAD 2>/dev/null");
  os << "{\n";
  os << "  \"schema\": \"rthv-perf-v1\",\n";
  os << "  \"git_rev\": \"" << (rev.empty() ? "unknown" : rev) << "\",\n";
  os << "  \"date\": \"" << utc_now() << "\",\n";
  os << "  \"benchmarks\": {\n";
  std::size_t i = 0;
  for (const auto& [name, m] : results) {
    os << "    \"" << name << "\": { \"ns_per_op\": " << m.ns_per_op
       << ", \"events_per_sec\": " << m.events_per_sec;
    if (m.steal_ratio >= 0.0) os << ", \"steal_ratio\": " << m.steal_ratio;
    os << " }" << (++i < results.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

// --- baseline comparison ----------------------------------------------------

/// Reads the `benchmarks` object of an rthv-perf-v1 JSON (the format
/// write_json emits) into name -> ns_per_op. Hand-rolled scan: the schema
/// is this tool's own output, so a full JSON parser buys nothing.
std::map<std::string, double> read_baseline_ns(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "perf_report: cannot read baseline " << path << "\n";
    std::exit(2);
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = text.find("\"benchmarks\"");
  if (pos == std::string::npos) {
    std::cerr << "perf_report: " << path << " has no \"benchmarks\" object\n";
    std::exit(2);
  }
  std::map<std::string, double> out;
  while ((pos = text.find("\"ns_per_op\"", pos)) != std::string::npos) {
    // The benchmark name is the quoted key before the enclosing '{'.
    const std::size_t brace = text.rfind('{', pos);
    const std::size_t colon = text.rfind(':', brace);
    const std::size_t name_end = text.rfind('"', colon);
    const std::size_t name_begin = text.rfind('"', name_end - 1);
    const std::string name = text.substr(name_begin + 1, name_end - name_begin - 1);
    const std::size_t value_at = text.find(':', pos) + 1;
    out[name] = std::strtod(text.c_str() + value_at, nullptr);
    pos = value_at;
  }
  if (out.empty()) {
    std::cerr << "perf_report: baseline " << path << " lists no benchmarks\n";
    std::exit(2);
  }
  return out;
}

/// One baseline-vs-current row of the comparison.
struct Delta {
  std::string name;
  double base_ns = 0.0;
  double cur_ns = 0.0;
  double ratio = 0.0;  // cur/base; > 1 = slower than baseline
  bool regressed = false;
};

/// Writes the sorted delta summary: every compared benchmark ordered
/// worst-regression-first, then the best/worst extremes called out. The
/// same text goes to stdout and (if `archive` is open) to the artifact
/// file ci keeps next to the fresh JSON.
void write_delta_summary(std::FILE* out, const std::vector<Delta>& deltas) {
  std::fprintf(out, "\n--- delta summary (current/baseline, worst first) ---\n");
  std::fprintf(out, "%-44s %12s %12s %8s\n", "benchmark", "baseline ns",
               "current ns", "ratio");
  for (const auto& d : deltas) {
    std::fprintf(out, "%-44s %12.3f %12.3f %8.3f%s\n", d.name.c_str(), d.base_ns,
                 d.cur_ns, d.ratio, d.regressed ? "  FAIL (>10% regression)" : "");
  }
  if (!deltas.empty()) {
    const auto& worst = deltas.front();
    const auto& best = deltas.back();
    std::fprintf(out, "worst regression: %s (%.3fx)\n", worst.name.c_str(),
                 worst.ratio);
    std::fprintf(out, "best improvement: %s (%.3fx)\n", best.name.c_str(),
                 best.ratio);
  }
}

/// Compares fresh results against a committed baseline. Fails (exit 1) if
/// any baseline benchmark is missing from this run or slowed down by more
/// than 10%, or if the batched campaign engine no longer clears its 5x
/// speedup over the classic sweep (batch/runs_per_sec vs sweep/runs_per_sec).
/// Benchmarks present in this run but absent from the baseline never gate:
/// they are listed as "new benchmark (no baseline)" so a PR can add probes
/// without immediately updating the committed JSON. A small absolute slack
/// keeps sub-nanosecond entries (the disabled trace-site probe) from
/// tripping the gate on timer quantization. `summary_path` (optional)
/// additionally archives the sorted delta summary as a text artifact.
int compare_against(const std::string& baseline_path,
                    const std::map<std::string, Measurement>& results,
                    const std::string& summary_path) {
  constexpr double kRelTolerance = 0.10;
  constexpr double kAbsSlackNs = 0.25;
  const auto baseline = read_baseline_ns(baseline_path);
  int failures = 0;
  std::vector<Delta> deltas;
  std::printf("\n%-44s %12s %12s %8s\n", "benchmark", "baseline ns", "current ns",
              "ratio");
  for (const auto& [name, base_ns] : baseline) {
    const auto it = results.find(name);
    if (it == results.end()) {
      std::printf("%-44s %12.3f %12s %8s  FAIL (missing)\n", name.c_str(), base_ns,
                  "-", "-");
      ++failures;
      continue;
    }
    const double cur_ns = it->second.ns_per_op;
    const bool regressed = cur_ns > base_ns * (1.0 + kRelTolerance) + kAbsSlackNs;
    std::printf("%-44s %12.3f %12.3f %8.3f%s\n", name.c_str(), base_ns, cur_ns,
                cur_ns / base_ns, regressed ? "  FAIL (>10% regression)" : "");
    deltas.push_back(Delta{name, base_ns, cur_ns, cur_ns / base_ns, regressed});
    if (regressed) ++failures;
  }
  for (const auto& [name, m] : results) {
    if (!baseline.contains(name)) {
      std::printf("%-44s %12s %12.3f %8s  new benchmark (no baseline)\n",
                  name.c_str(), "-", m.ns_per_op, "-");
    }
  }

  std::sort(deltas.begin(), deltas.end(),
            [](const Delta& a, const Delta& b) { return a.ratio > b.ratio; });
  write_delta_summary(stdout, deltas);
  if (!summary_path.empty()) {
    if (std::FILE* archive = std::fopen(summary_path.c_str(), "w")) {
      std::fprintf(archive, "baseline: %s\n", baseline_path.c_str());
      write_delta_summary(archive, deltas);
      std::fclose(archive);
      std::printf("delta summary archived to %s\n", summary_path.c_str());
    } else {
      std::fprintf(stderr, "perf_report: cannot write summary %s\n",
                   summary_path.c_str());
      ++failures;
    }
  }

  // The batched-campaign acceptance gate: pooled warm-start + work stealing
  // must keep a >= 5x runs/sec advantage over the construct-per-run sweep.
  const auto batch_it = results.find("batch/runs_per_sec");
  const auto sweep_it = results.find("sweep/runs_per_sec");
  if (batch_it != results.end() && sweep_it != results.end() &&
      batch_it->second.ns_per_op > 0.0) {
    const double speedup = sweep_it->second.ns_per_op / batch_it->second.ns_per_op;
    const bool ok = speedup >= 5.0;
    std::printf("batched campaign speedup over SweepRunner: %.2fx%s\n", speedup,
                ok ? "" : "  FAIL (< 5x)");
    if (!ok) ++failures;
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "perf_report: %d benchmark(s) regressed >10%% against %s\n",
                 failures, baseline_path.c_str());
    return 1;
  }
  std::printf("perf_report: no regression against %s\n", baseline_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_sim_throughput.json";
  std::string compare_baseline;
  std::string summary_out;
  // First non --benchmark_* argument is the output path; `--compare <path>`
  // (or `--compare=<path>`) additionally gates this run against a committed
  // baseline, and `--summary-out <path>` archives the sorted delta summary
  // of that comparison as a text artifact.
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--compare" && i + 1 < argc) {
      compare_baseline = argv[++i];
    } else if (arg.starts_with("--compare=")) {
      compare_baseline = std::string(arg.substr(std::string_view("--compare=").size()));
    } else if (arg == "--summary-out" && i + 1 < argc) {
      summary_out = argv[++i];
    } else if (arg.starts_with("--summary-out=")) {
      summary_out =
          std::string(arg.substr(std::string_view("--summary-out=").size()));
    } else if (arg.starts_with("--")) {
      bench_args.push_back(argv[i]);
    } else {
      output = argv[i];
    }
  }

  benchmark::RegisterBenchmark("event_queue/schedule_pop", schedule_pop)
      ->Arg(0)->Arg(1000)->Arg(100000);
  benchmark::RegisterBenchmark("event_queue/schedule_cancel", schedule_cancel)
      ->Arg(1000)->Arg(100000);
  benchmark::RegisterBenchmark("event_queue/mixed_hv_pattern", mixed_hv_pattern);
  benchmark::RegisterBenchmark("mon/delta_min_admit", delta_min_admit);
  benchmark::RegisterBenchmark("mon/delta_vector_admit", delta_vector_admit);
  benchmark::RegisterBenchmark("mon/delta_vector_admit_batch16", delta_vector_admit_batch);
  benchmark::RegisterBenchmark("obs/trace_overhead_ns", trace_overhead_disabled);
  benchmark::RegisterBenchmark("obs/trace_overhead_enabled_ns", trace_overhead_enabled);
  benchmark::RegisterBenchmark("obs/trace_overhead_enabled_batch16_ns",
                               trace_overhead_enabled_batch);
  benchmark::RegisterBenchmark("batch/warm_start_ns", batch_warm_start);
  benchmark::RegisterBenchmark("batch/runs_per_sec", batch_runs_per_sec)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("sweep/runs_per_sec", sweep_runs_per_sec)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("batch/steal_ratio", batch_steal_ratio)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("full_system/events", full_system_events)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("full_system/irqs", full_system_irqs)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("full_system/multicore_irqs", full_system_multicore_irqs)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("full_system/irqs_phases/queue", irqs_phases_queue)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("full_system/irqs_phases/dispatch", irqs_phases_dispatch)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("full_system/irqs_phases/admit", irqs_phases_admit)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("full_system/irqs_phases/trace", irqs_phases_trace)
      ->Unit(benchmark::kMillisecond);

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  write_json(output, reporter.results());
  std::cout << "wrote " << output << "\n";
  if (!compare_baseline.empty()) {
    return compare_against(compare_baseline, reporter.results(), summary_out);
  }
  return 0;
}
