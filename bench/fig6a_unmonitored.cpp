// Reproduces Fig. 6a: IRQ latency histogram with monitoring disabled.
//
// Paper result (shape): ~40 % direct IRQs below ~50 us, ~60 % delayed IRQs
// approximately uniform in (0, T_TDMA - T_i] = (0, 8000 us]; average
// latency ~2500 us over 15000 IRQs; worst case ~8000 us.
//
// usage: fig6a_unmonitored [--jobs N] [--trace-out f.json] [--metrics-out f.json]
//        [--batch] [--no-warm-start] [--chunk N] [export-dir]
#include <iostream>

#include "exp/cli.hpp"
#include "fig6_common.hpp"

int main(int argc, char** argv) {
  const auto cli = rthv::exp::parse_cli(argc, argv);
  rthv::bench::Fig6Config config;
  config.monitored = false;
  config.enforce_floor = false;
  config.jobs = cli.jobs;
  config.trace = !cli.trace_out.empty();
  config.fault_plan = cli.fault_plan;
  config.batch = cli.batch;
  config.warm_start = cli.warm_start;
  config.chunk = cli.chunk;
  const auto result = rthv::bench::run_fig6(config);
  rthv::bench::print_fig6_report(std::cout, "Fig. 6a -- monitoring disabled", config,
                                 result);
  if (!cli.positional.empty()) {
    rthv::bench::export_fig6(cli.positional[0], "fig6a", "Fig. 6a -- monitoring disabled",
                             result);
  }
  rthv::bench::export_fig6_observability(result, cli.trace_out, cli.metrics_out);
  std::cout << "paper reference: direct ~40% (<=50us), delayed ~60% (uniform up to "
               "8000us), average ~2500us\n";
  return 0;
}
