// Interposition vs UINTC-style direct delivery, Fig. 6 setup.
//
// Runs the monitored Fig. 6b configuration twice over identical activation
// traces (same seeds, same loads): once with the paper's interposing top
// handler, once with hardware direct delivery enabled for the monitored
// source, where the interrupt controller vectors the IRQ straight to the
// subscriber after the configured hardware cost and the delta^- monitor
// runs as a decision-free shadow. The report compares latency distributions
// side by side: the interposition path pays top-half + decision + context
// interposition on every admitted IRQ, while the direct path collapses this
// to the hardware delivery cost -- the "sub-microsecond IRQ" claim in
// numbers.
//
// usage: fig6_direct_compare [--jobs N] [--batch] [--no-warm-start] [--chunk N]
//        [export-dir]
#include <iostream>

#include "exp/cli.hpp"
#include "fig6_common.hpp"
#include "stats/table.hpp"

namespace {

using rthv::stats::HandlingClass;
using rthv::stats::Table;

double us(rthv::sim::Duration d) { return static_cast<double>(d.count_ns()) / 1e3; }

void append_rows(Table& table, const char* label, const rthv::bench::Fig6Result& r) {
  const auto& all = r.recorder.all();
  table.add_row({label, Table::num(us(all.mean())), Table::num(us(all.median())),
                 Table::num(us(all.percentile(99.0))), Table::num(us(all.max())),
                 std::to_string(r.tdma_switches + r.interpose_switches +
                                r.deferred_switches)});
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = rthv::exp::parse_cli(argc, argv);

  rthv::bench::Fig6Config interpose;
  interpose.monitored = true;
  interpose.jobs = cli.jobs;
  interpose.batch = cli.batch;
  interpose.warm_start = cli.warm_start;
  interpose.chunk = cli.chunk;

  rthv::bench::Fig6Config direct = interpose;
  direct.direct = true;

  const auto r_interpose = rthv::bench::run_fig6(interpose);
  const auto r_direct = rthv::bench::run_fig6(direct);

  std::cout << "=== interposition vs UINTC-style direct delivery (Fig. 6 setup) ===\n";
  std::cout << "identical exponential traces, loads 1/5/10 %, d_min = "
            << Table::num(us(r_interpose.d_min)) << " us\n\n";

  Table table({"variant", "avg [us]", "p50 [us]", "p99 [us]", "max [us]", "switches"});
  append_rows(table, "interposition", r_interpose);
  append_rows(table, "direct", r_direct);
  table.write(std::cout);

  std::cout << "\nhandling-class split:\n";
  std::cout << "  interposition: ";
  r_interpose.recorder.write_summary(std::cout);
  std::cout << "  direct:        ";
  r_direct.recorder.write_summary(std::cout);

  // The headline number: what the hardware path does to the latency of the
  // IRQs that interposition would have admitted into a foreign slot.
  const auto& hw = r_direct.recorder.of(HandlingClass::kDirectHw);
  const auto& inter = r_interpose.recorder.of(HandlingClass::kInterposed);
  if (hw.count() > 0 && inter.count() > 0) {
    std::cout << "\ndirect-delivery latency (hw path):   avg "
              << Table::num(us(hw.mean())) << " us, max " << Table::num(us(hw.max()))
              << " us over " << hw.count() << " IRQs\n";
    std::cout << "interposed latency (hv path):        avg "
              << Table::num(us(inter.mean())) << " us, max "
              << Table::num(us(inter.max())) << " us over " << inter.count()
              << " IRQs\n";
    std::cout << "avg improvement, direct over interposed: "
              << Table::num(static_cast<double>(inter.mean().count_ns()) /
                            static_cast<double>(hw.mean().count_ns()))
              << "x\n";
  }

  if (!cli.positional.empty()) {
    rthv::bench::export_fig6(cli.positional[0], "fig6_interpose",
                             "interposition (Fig. 6b)", r_interpose);
    rthv::bench::export_fig6(cli.positional[0], "fig6_direct",
                             "UINTC-style direct delivery", r_direct);
  }
  return 0;
}
