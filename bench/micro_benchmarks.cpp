// Host-side micro-benchmarks (google-benchmark) of the building blocks on
// the hot paths: monitor admission checks, IRQ queue operations, the
// discrete-event queue, busy-window solving and full-system simulation
// throughput.
#include <benchmark/benchmark.h>

#include "analysis/irq_latency.hpp"
#include "core/hypervisor_system.hpp"
#include "mon/learning_monitor.hpp"
#include "mon/monitor.hpp"
#include "sim/event_queue.hpp"
#include "workload/generators.hpp"

using namespace rthv;
using sim::Duration;
using sim::TimePoint;

namespace {

void BM_DeltaMinMonitorCheck(benchmark::State& state) {
  mon::DeltaMinMonitor monitor(Duration::us(100));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 73'000;
    benchmark::DoNotOptimize(monitor.record_and_check(TimePoint::at_ns(t)));
  }
}
// Registered under the mon/ names the perf baseline uses, so the admission
// cost reads the same here and in BENCH_sim_throughput.json.
BENCHMARK(BM_DeltaMinMonitorCheck)->Name("mon/delta_min_admit");

void BM_DeltaVectorMonitorCheck(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  mon::DeltaVector deltas;
  for (std::size_t i = 0; i < depth; ++i) {
    deltas.push_back(Duration::us(100 * static_cast<std::int64_t>(i + 1)));
  }
  mon::DeltaVectorMonitor monitor(deltas);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 73'000;
    benchmark::DoNotOptimize(monitor.record_and_check(TimePoint::at_ns(t)));
  }
}
BENCHMARK(BM_DeltaVectorMonitorCheck)->Name("mon/delta_vector_admit")->Arg(1)->Arg(5)->Arg(16);

void BM_LearningMonitorLearnStep(benchmark::State& state) {
  mon::LearningDeltaMonitor monitor(5, UINT64_MAX);  // stays in learning mode
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 51'000;
    benchmark::DoNotOptimize(monitor.record_and_check(TimePoint::at_ns(t)));
  }
}
BENCHMARK(BM_LearningMonitorLearnStep);

void BM_IrqQueuePushPop(benchmark::State& state) {
  hv::IrqQueue queue(256);
  hv::IrqEvent ev;
  for (auto _ : state) {
    queue.push(ev);
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_IrqQueuePushPop);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 1000;
    queue.schedule(TimePoint::at_ns(t), [] {});
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// Steady-state schedule+pop with a large pending set (heap depth log n).
// Arg = number of events already pending.
void BM_EventQueueScheduleAndPopPending(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  queue.reserve(pending + 1);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    t += 1000;
    queue.schedule(TimePoint::at_ns(t), [] {});
  }
  for (auto _ : state) {
    t += 1000;
    queue.schedule(TimePoint::at_ns(t), [] {});
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_EventQueueScheduleAndPopPending)->Arg(1000)->Arg(100000);

// Schedule an event and cancel it again while `pending` other events are
// live -- the hypervisor's preemption pattern (every IRQ entry cancels the
// running work unit's completion event). Arg = pending events.
void BM_EventQueueScheduleAndCancel(benchmark::State& state) {
  const auto pending = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  queue.reserve(pending + 1);
  std::int64_t t = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    t += 1000;
    queue.schedule(TimePoint::at_ns(t), [] {});
  }
  for (auto _ : state) {
    t += 1000;
    const sim::EventId id = queue.schedule(TimePoint::at_ns(t), [] {});
    benchmark::DoNotOptimize(queue.cancel(id));
  }
}
BENCHMARK(BM_EventQueueScheduleAndCancel)->Arg(1000)->Arg(100000);

// Mixed workload mirroring HypervisorSystem scheduling: each simulated IRQ
// schedules a timer event and a work-unit completion, preempts (cancels)
// the completion, reschedules the remainder and pops the next event --
// with stateful capture payloads like the hypervisor's continuations.
void BM_EventQueueMixedHvPattern(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    t += 5000;
    const auto timer = queue.schedule(TimePoint::at_ns(t + 1444), [&sink] { ++sink; });
    const auto completion =
        queue.schedule(TimePoint::at_ns(t + 40000), [&sink, t] {
          sink += static_cast<std::uint64_t>(t);
        });
    queue.cancel(completion);  // IRQ entry preempts the running unit
    queue.schedule(TimePoint::at_ns(t + 45000), [&sink, t] {
      sink += static_cast<std::uint64_t>(t) + 1;
    });
    benchmark::DoNotOptimize(queue.pop());
    queue.pop().callback();
    benchmark::DoNotOptimize(timer);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueMixedHvPattern);

void BM_BusyWindowSolve(benchmark::State& state) {
  analysis::BusyWindowProblem problem;
  problem.per_event_cost = Duration::us(40);
  problem.interference.push_back(analysis::load_interference(
      analysis::ArrivalCurve(analysis::make_sporadic(Duration::us(1444))),
      Duration::us(5)));
  problem.interference.push_back([](Duration w) {
    return Duration::us(8000) * Duration::ceil_div(w, Duration::us(14000));
  });
  const analysis::BusyWindowSolver solver(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.busy_time(3));
  }
}
BENCHMARK(BM_BusyWindowSolve);

void BM_WcrtFullAnalysis(benchmark::State& state) {
  const analysis::IrqSourceModel own{analysis::make_sporadic(Duration::us(1444)),
                                     Duration::us(5), Duration::us(40)};
  const analysis::TdmaModel tdma{Duration::us(14000), Duration::us(6000)};
  const analysis::OverheadTimes oh{Duration::ns(640), Duration::ns(4385),
                                   Duration::us(50)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::tdma_latency(own, {}, tdma, oh, true));
    benchmark::DoNotOptimize(analysis::interposed_latency(own, {}, oh));
  }
}
BENCHMARK(BM_WcrtFullAnalysis);

void BM_ExponentialTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 42);
    benchmark::DoNotOptimize(gen.generate(1000));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExponentialTraceGeneration);

void BM_FullSystemSimulation(benchmark::State& state) {
  // Simulated-IRQ throughput of the complete hypervisor system (monitored
  // configuration, 10% load).
  for (auto _ : state) {
    auto cfg = core::SystemConfig::paper_baseline();
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    cfg.sources[0].d_min = Duration::us(1444);
    core::HypervisorSystem system(cfg);
    workload::ExponentialTraceGenerator gen(Duration::us(1444), 7);
    system.attach_trace(0, gen.generate(200));
    benchmark::DoNotOptimize(system.run(Duration::s(10)));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_FullSystemSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
