// Reproduces the paper's timing diagrams:
//   Fig. 3 -- "Interrupt Latency": a HW IRQ arrives during partition 1's
//             slot, the top handler runs in the hypervisor, and the bottom
//             handler waits for partition 2's next TDMA slot.
//   Fig. 5 -- "Interrupt Latency for interposed IRQ": the same arrival, but
//             the monitoring condition admits it and the bottom handler
//             executes interposed inside partition 1's slot.
//
// The bench runs both situations on the real hypervisor and prints the
// event-by-event timeline (hypervisor trace log) plus the context-occupancy
// intervals, i.e. the data behind the two diagrams.
#include <iostream>

#include "core/hypervisor_system.hpp"
#include "core/timeline.hpp"
#include "obs/exporters.hpp"
#include "workload/trace.hpp"

using namespace rthv;
using sim::Duration;
using sim::TimePoint;

namespace {

void run_diagram(const char* title, bool interposing) {
  auto cfg = core::SystemConfig::paper_baseline();
  cfg.partitions[0].background_load = false;  // keep the timeline readable
  cfg.partitions[1].background_load = false;
  if (interposing) {
    cfg.mode = hv::TopHandlerMode::kInterposing;
    cfg.sources[0].monitor = core::MonitorKind::kDeltaMin;
    cfg.sources[0].d_min = Duration::us(1444);
  }
  core::HypervisorSystem system(cfg);
  system.keep_completions(true);
  core::TimelineRecorder timeline;
  timeline.attach(system.hypervisor());
  system.enable_tracing();

  // One IRQ at t = 2000us: inside partition 1's slot, subscriber is
  // partition 2 (exactly the situation of Figs. 3/5).
  system.attach_trace(0, workload::Trace({Duration::us(2000)}));
  system.run(Duration::us(30'000));
  timeline.finish(system.simulator().now());

  std::cout << "=== " << title << " ===\n";
  const auto meta = system.trace_meta();
  std::cout << "hypervisor event log:\n" << obs::render_text(system.trace(), &meta);
  std::cout << "context occupancy (first 22000us):\n";
  for (const auto& iv : timeline.intervals()) {
    if (iv.begin > TimePoint::at_us(22'000)) break;
    std::cout << "  [" << iv.begin.as_us() << ", "
              << (iv.end == TimePoint::max() ? -1.0 : iv.end.as_us()) << ")us  "
              << cfg.partitions[iv.partition].name << "\n";
  }
  const auto& rec = system.completions().at(0);
  std::cout << "IRQ latency (top-handler activation -> bottom-handler end): "
            << rec.latency() << " [" << stats::to_string(rec.handling) << "]\n\n";
}

}  // namespace

int main() {
  run_diagram("Fig. 3 -- delayed handling (original top handler)", false);
  run_diagram("Fig. 5 -- interposed handling (modified top handler)", true);
  std::cout << "paper reference: in Fig. 3 the bottom handler runs only after the\n"
               "TDMA switch to partition 2 (latency ~ slot remainder); in Fig. 5 it\n"
               "runs immediately after the top handler inside partition 1's slot\n"
               "(latency ~ C'_TH + C_sched + C_ctx + C_BH).\n";
  return 0;
}
